"""Data-plane correctness for every collective (pure NumPy layer)."""

import numpy as np
import pytest

from repro.backends import datapath
from repro.backends.ops import ReduceOp


def bufs(p, n, fn):
    return [np.array([fn(r, i) for i in range(n)], dtype=np.float32) for r in range(p)]


class TestAllReduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 8])
    def test_sum(self, p):
        ins = bufs(p, 4, lambda r, i: r + i)
        outs = [np.zeros(4, dtype=np.float32) for _ in range(p)]
        datapath.all_reduce(ins, outs, ReduceOp.SUM)
        expected = sum(range(p)) + np.arange(4) * p
        for out in outs:
            assert np.allclose(out, expected)

    def test_in_place_aliasing(self):
        ins = bufs(3, 4, lambda r, i: float(r))
        datapath.all_reduce(ins, ins, ReduceOp.SUM)
        for buf in ins:
            assert np.allclose(buf, 3.0)

    @pytest.mark.parametrize(
        "op,expected",
        [
            (ReduceOp.SUM, 6.0),
            (ReduceOp.PROD, 0.0),
            (ReduceOp.MIN, 0.0),
            (ReduceOp.MAX, 3.0),
            (ReduceOp.AVG, 1.5),
        ],
    )
    def test_ops(self, op, expected):
        ins = [np.full(2, float(r), dtype=np.float32) for r in range(4)]
        outs = [np.zeros(2, dtype=np.float32) for _ in range(4)]
        datapath.all_reduce(ins, outs, op)
        assert np.allclose(outs[0], expected)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            datapath.all_reduce(
                [np.zeros(3), np.zeros(4)], [np.zeros(3), np.zeros(4)], ReduceOp.SUM
            )


class TestReduceBroadcast:
    def test_reduce_to_root(self):
        ins = [np.full(3, float(r + 1), dtype=np.float32) for r in range(3)]
        root = np.zeros(3, dtype=np.float32)
        datapath.reduce(ins, root, ReduceOp.SUM)
        assert np.allclose(root, 6.0)

    def test_broadcast(self):
        src = np.arange(4, dtype=np.float32)
        outs = [np.zeros(4, dtype=np.float32) for _ in range(3)]
        datapath.broadcast(src, outs)
        for out in outs:
            assert np.array_equal(out, src)

    def test_broadcast_aliased_root(self):
        src = np.arange(4, dtype=np.float32)
        outs = [src, np.zeros(4, dtype=np.float32)]
        datapath.broadcast(src, outs)
        assert np.array_equal(outs[1], np.arange(4))


class TestAllGather:
    def test_rank_major_order(self):
        ins = [np.full(2, float(r), dtype=np.float32) for r in range(3)]
        outs = [np.zeros(6, dtype=np.float32) for _ in range(3)]
        datapath.all_gather(ins, outs)
        assert np.array_equal(outs[0], [0, 0, 1, 1, 2, 2])

    def test_v_variant_with_displacements(self):
        ins = [
            np.array([1, 1], dtype=np.float32),
            np.array([2, 2, 2], dtype=np.float32),
        ]
        rcounts, displs = [2, 3], [0, 2]
        outs = [np.zeros(5, dtype=np.float32) for _ in range(2)]
        datapath.all_gather_v(ins, outs, rcounts, displs)
        assert np.array_equal(outs[1], [1, 1, 2, 2, 2])

    def test_v_variant_gap_displacements(self):
        ins = [np.array([1.0], dtype=np.float32), np.array([2.0], dtype=np.float32)]
        outs = [np.full(4, -1, dtype=np.float32) for _ in range(2)]
        datapath.all_gather_v(ins, outs, [1, 1], [0, 3])
        assert np.array_equal(outs[0], [1, -1, -1, 2])

    def test_v_displacement_overflow_rejected(self):
        ins = [np.ones(2, dtype=np.float32)] * 2
        outs = [np.zeros(3, dtype=np.float32)] * 2
        with pytest.raises(ValueError):
            datapath.all_gather_v(ins, outs, [2, 2], [0, 2])


class TestReduceScatter:
    def test_chunks(self):
        ins = [np.arange(6, dtype=np.float32) for _ in range(3)]
        outs = [np.zeros(2, dtype=np.float32) for _ in range(3)]
        datapath.reduce_scatter(ins, outs, ReduceOp.SUM)
        assert np.array_equal(outs[0], [0, 3])
        assert np.array_equal(outs[2], [12, 15])

    def test_indivisible_rejected(self):
        ins = [np.zeros(5, dtype=np.float32)] * 2
        outs = [np.zeros(2, dtype=np.float32)] * 2
        with pytest.raises(ValueError):
            datapath.reduce_scatter(ins, outs, ReduceOp.SUM)


class TestAllToAll:
    def test_single_transpose(self):
        p = 3
        ins = [np.arange(p, dtype=np.float32) + 10 * r for r in range(p)]
        outs = [np.zeros(p, dtype=np.float32) for _ in range(p)]
        datapath.all_to_all_single(ins, outs)
        # rank j receives chunk j from every rank i, in rank order
        for j in range(p):
            assert np.array_equal(outs[j], [10 * i + j for i in range(p)])

    def test_single_roundtrip(self):
        p = 4
        rng = np.random.default_rng(0)
        ins = [rng.random(p * 2).astype(np.float32) for _ in range(p)]
        mid = [np.zeros(p * 2, dtype=np.float32) for _ in range(p)]
        back = [np.zeros(p * 2, dtype=np.float32) for _ in range(p)]
        datapath.all_to_all_single(ins, mid)
        datapath.all_to_all_single(mid, back)
        for a, b in zip(ins, back):
            assert np.allclose(a, b)

    def test_v_variant(self):
        # rank 0 sends [1] to r0, [2,2] to r1; rank 1 sends [3,3] to r0, [4] to r1
        ins = [
            np.array([1, 2, 2], dtype=np.float32),
            np.array([3, 3, 4], dtype=np.float32),
        ]
        outs = [np.zeros(3, dtype=np.float32), np.zeros(3, dtype=np.float32)]
        scounts = [[1, 2], [2, 1]]
        sdispls = [[0, 1], [0, 2]]
        rcounts = [[1, 2], [2, 1]]
        rdispls = [[0, 1], [0, 2]]
        datapath.all_to_all_v(ins, outs, scounts, sdispls, rcounts, rdispls)
        assert np.array_equal(outs[0], [1, 3, 3])
        assert np.array_equal(outs[1], [2, 2, 4])

    def test_v_count_mismatch_rejected(self):
        ins = [np.zeros(2, dtype=np.float32)] * 2
        outs = [np.zeros(2, dtype=np.float32)] * 2
        with pytest.raises(ValueError, match="scounts"):
            datapath.all_to_all_v(
                ins, outs, [[1, 1], [1, 1]], [[0, 1], [0, 1]],
                [[1, 2], [1, 1]], [[0, 1], [0, 1]],
            )


class TestGatherScatter:
    def test_gather(self):
        ins = [np.full(2, float(r), dtype=np.float32) for r in range(3)]
        root = np.zeros(6, dtype=np.float32)
        datapath.gather(ins, root)
        assert np.array_equal(root, [0, 0, 1, 1, 2, 2])

    def test_gather_v(self):
        ins = [np.array([1.0], dtype=np.float32), np.array([2.0, 2.0], dtype=np.float32)]
        root = np.zeros(3, dtype=np.float32)
        datapath.gather_v(ins, root, [1, 2], [0, 1])
        assert np.array_equal(root, [1, 2, 2])

    def test_scatter(self):
        src = np.arange(6, dtype=np.float32)
        outs = [np.zeros(2, dtype=np.float32) for _ in range(3)]
        datapath.scatter(src, outs)
        assert np.array_equal(outs[1], [2, 3])

    def test_scatter_v(self):
        src = np.arange(5, dtype=np.float32)
        outs = [np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32)]
        datapath.scatter_v(src, outs, [2, 3], [0, 2])
        assert np.array_equal(outs[0], [0, 1])
        assert np.array_equal(outs[1], [2, 3, 4])

    def test_scatter_v_overflow_rejected(self):
        src = np.arange(3, dtype=np.float32)
        outs = [np.zeros(2, dtype=np.float32)] * 2
        with pytest.raises(ValueError):
            datapath.scatter_v(src, outs, [2, 2], [0, 2])


class TestReduceOpApply:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReduceOp.SUM.apply([])

    def test_avg_preserves_dtype(self):
        arrays = [np.ones(2, dtype=np.float32) * v for v in (1.0, 2.0)]
        out = ReduceOp.AVG.apply(arrays)
        assert out.dtype == np.float32
        assert np.allclose(out, 1.5)

    def test_integer_sum(self):
        arrays = [np.array([1, 2], dtype=np.int64), np.array([3, 4], dtype=np.int64)]
        assert np.array_equal(ReduceOp.SUM.apply(arrays), [4, 6])


class TestAliasing:
    """The aliasing-aware staging path (``_stage_if_aliased``).

    Staging copies are made only when an input view actually overlaps
    an output view; these tests pin both halves of that contract — no
    copies for disjoint buffers, correct results for aliased ones.
    """

    def test_stage_returns_same_objects_when_disjoint(self):
        srcs = [np.arange(4, dtype=np.float32) for _ in range(3)]
        dsts = [np.zeros(4, dtype=np.float32) for _ in range(3)]
        staged = datapath._stage_if_aliased(srcs, dsts)
        assert all(s is orig for s, orig in zip(staged, srcs))

    def test_stage_copies_everything_on_overlap(self):
        pool = np.zeros(8, dtype=np.float32)
        srcs = [pool[:4], np.arange(4, dtype=np.float32)]
        dsts = [pool[4:], pool[:4]]
        staged = datapath._stage_if_aliased(srcs, dsts)
        assert all(
            not np.shares_memory(s, d) for s in staged for d in dsts
        )
        assert np.array_equal(staged[1], srcs[1])

    def test_all_reduce_aliased_matches_fresh(self):
        p, n = 4, 8
        ins = bufs(p, n, lambda r, i: r * 10.0 + i)
        fresh_out = [np.zeros(n, dtype=np.float32) for _ in range(p)]
        datapath.all_reduce([b.copy() for b in ins], fresh_out, ReduceOp.SUM)
        datapath.all_reduce(ins, ins, ReduceOp.SUM)  # fully in place
        for got, want in zip(ins, fresh_out):
            assert np.array_equal(got, want)

    def test_reduce_scatter_outputs_view_inputs(self):
        p, n = 4, 8
        ins = bufs(p, n, lambda r, i: r + i * 2.0)
        fresh_out = [np.zeros(n // p, dtype=np.float32) for _ in range(p)]
        datapath.reduce_scatter([b.copy() for b in ins], fresh_out, ReduceOp.SUM)
        # each rank receives its chunk into a view of its own input
        aliased_out = [ins[r][: n // p] for r in range(p)]
        datapath.reduce_scatter(ins, aliased_out, ReduceOp.SUM)
        for got, want in zip(aliased_out, fresh_out):
            assert np.array_equal(got, want)

    def test_all_to_all_single_fully_in_place(self):
        p, n = 4, 8
        ins = bufs(p, n, lambda r, i: r * 100.0 + i)
        fresh_out = [np.zeros(n, dtype=np.float32) for _ in range(p)]
        datapath.all_to_all_single([b.copy() for b in ins], fresh_out)
        datapath.all_to_all_single(ins, ins)  # outputs alias inputs
        for got, want in zip(ins, fresh_out):
            assert np.array_equal(got, want)

    def test_all_to_all_single_disjoint_makes_no_copies(self, monkeypatch):
        copies = []
        real = np.array

        def counting_array(obj, *args, **kwargs):
            if kwargs.get("copy"):
                copies.append(obj)
            return real(obj, *args, **kwargs)

        monkeypatch.setattr(datapath.np, "array", counting_array)
        p, n = 4, 8
        ins = bufs(p, n, lambda r, i: r * 100.0 + i)
        outs = [np.zeros(n, dtype=np.float32) for _ in range(p)]
        datapath.all_to_all_single(ins, outs)
        assert copies == []  # disjoint buffers: zero staging copies

    def test_gather_v_root_output_aliases_an_input(self):
        # regression: gather_v never staged, so a root output
        # overlapping a contributing buffer could read corrupted data
        pool = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        ins = [np.array([9.0, 9.0], dtype=np.float32), pool[:2]]
        root = pool  # rank 1's buffer is a view of the root output
        datapath.gather_v(ins, root, [2, 2], [0, 2])
        assert np.array_equal(root, [9, 9, 1, 2])
