"""The parallel, incremental sweep engine (repro.bench.sweep).

Covers the engine itself (deterministic merge, spawn-pool fan-out, the
content-addressed cache) and its two production call sites: the tuning
suite (``Tuner.build_table``) and the Fig. 2 micro-benchmark sweep
(``sweep_backends``).  Parallel-vs-serial tests use tiny grids — spawn
pool startup costs ~1.5 s per test on a small host.
"""

import dataclasses
import json

import pytest

from repro.backends.base import backend_class, clear_cost_caches
from repro.backends.ops import OpFamily
from repro.bench.microbench import sweep_backends
from repro.bench.sweep import (
    _MISS,
    SWEEP_SCHEMA_VERSION,
    SweepCache,
    run_sweep,
    stable_hash,
)
from repro.cluster import lassen
from repro.core import Tuner
from repro.obs.metrics import MetricsRegistry


# workers must be top-level so the spawn pool can pickle them by name
def _affine(context, unit):
    return unit * 2 + context


def _returns_none(context, unit):
    return None


def _keys_for(units):
    return [stable_hash(("toy", u)) for u in units]


class TestRunSweep:
    def test_serial_preserves_unit_order(self):
        outcome = run_sweep(_affine, [3, 1, 2], context=10)
        assert outcome.results == [16, 12, 14]
        assert outcome.stats.units == 3
        assert outcome.stats.computed == 3
        assert outcome.stats.cache_hits == outcome.stats.cache_misses == 0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_affine, [1], jobs=0)

    def test_cache_requires_one_key_per_unit(self, tmp_path):
        cache = SweepCache(tmp_path)
        with pytest.raises(ValueError):
            run_sweep(_affine, [1, 2], cache=cache)
        with pytest.raises(ValueError):
            run_sweep(_affine, [1, 2], cache=cache, keys=["x"])

    def test_parallel_merge_matches_serial(self):
        units = list(range(8))
        serial = run_sweep(_affine, units, context=5)
        parallel = run_sweep(_affine, units, context=5, jobs=3)
        assert parallel.results == serial.results
        assert parallel.stats.jobs == 3

    def test_cache_cold_then_warm(self, tmp_path):
        units = [4, 5, 6]
        keys = _keys_for(units)
        cache = SweepCache(tmp_path)
        cold = run_sweep(_affine, units, context=1, cache=cache, keys=keys)
        assert cold.stats.cache_misses == 3 and cold.stats.computed == 3
        assert len(cache) == 3
        warm = run_sweep(_affine, units, context=1, cache=cache, keys=keys)
        assert warm.stats.cache_hits == 3 and warm.stats.computed == 0
        assert warm.results == cold.results == [9, 11, 13]

    def test_none_results_are_cacheable(self, tmp_path):
        # the cache must distinguish "stored None" from "absent"
        units = ["a"]
        keys = _keys_for(units)
        cache = SweepCache(tmp_path)
        run_sweep(_returns_none, units, cache=cache, keys=keys)
        warm = run_sweep(_returns_none, units, cache=cache, keys=keys)
        assert warm.results == [None]
        assert warm.stats.cache_hits == 1 and warm.stats.computed == 0

    def test_metrics_receive_cache_counts(self, tmp_path):
        units = [1, 2]
        keys = _keys_for(units)
        cache = SweepCache(tmp_path)
        metrics = MetricsRegistry()
        run_sweep(_affine, units, context=0, cache=cache, keys=keys, metrics=metrics)
        assert metrics.counters["tuning.cache.miss"] == 2
        assert metrics.counters["tuning.cache.hit"] == 0
        run_sweep(_affine, units, context=0, cache=cache, keys=keys, metrics=metrics)
        assert metrics.counters["tuning.cache.hit"] == 2
        events = [e for e in metrics.events if e.family == "sweep_cache"]
        assert events and all(e.kind == "tuning" for e in events)


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = stable_hash("cell")
        cache.put(key, {"op": "allreduce"}, 12.5)
        assert cache.get(key) == 12.5

    def test_absent_and_corrupt_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = stable_hash("cell")
        assert cache.get(key) is _MISS
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is _MISS

    def test_schema_mismatch_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = stable_hash("cell")
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"schema": SWEEP_SCHEMA_VERSION + 1, "cell": {}, "value": 1.0})
        )
        assert cache.get(key) is _MISS

    def test_float_roundtrip_exact(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = stable_hash("cell")
        value = 0.1 + 0.2  # not exactly representable in decimal
        cache.put(key, None, value)
        assert cache.get(key) == value  # bit-for-bit, not approx

    def test_stable_hash_insensitive_to_dict_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})


class TestTunerSweep:
    GRID = dict(
        world_sizes=[4],
        message_sizes=[1024, 65536],
        ops=[OpFamily.ALLGATHER],
    )

    def _tuner(self, **kw):
        return Tuner(
            lassen(), ["nccl", "mvapich2-gdr"],
            mode="simulated", iterations=2, warmup=1, **kw,
        )

    def test_parallel_build_table_byte_identical(self, tmp_path):
        serial = self._tuner().build_table(**self.GRID)
        parallel = self._tuner().build_table(**self.GRID, jobs=4)
        assert parallel.samples == serial.samples  # identical ordering too
        assert parallel == serial  # sweep_stats excluded from equality
        a, b = tmp_path / "serial.json", tmp_path / "parallel.json"
        serial.table.save(a)
        parallel.table.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_warm_cache_recomputes_nothing_and_matches(self, tmp_path):
        serial = self._tuner().build_table(**self.GRID)
        cold = self._tuner().build_table(**self.GRID, cache=SweepCache(tmp_path))
        warm = self._tuner().build_table(**self.GRID, cache=SweepCache(tmp_path))
        assert cold.sweep_stats.computed == cold.sweep_stats.cache_misses == 4
        assert warm.sweep_stats.computed == 0
        assert warm.sweep_stats.cache_hits == 4
        assert serial == cold == warm

    def test_calibration_edit_invalidates_only_that_backend(
        self, tmp_path, monkeypatch
    ):
        # jobs=1 throughout: a monkeypatched class attribute does not
        # propagate to spawn children (they re-import pristine modules)
        tuner = Tuner(lassen(), ["nccl", "gloo"], mode="analytic")
        grid = dict(world_sizes=[4], message_sizes=[1024, 4096, 16384],
                    ops=[OpFamily.ALLREDUCE])
        cache = SweepCache(tmp_path)
        cold = tuner.build_table(**grid, cache=cache)
        assert cold.sweep_stats.cache_misses == 6

        cls = backend_class("nccl")
        monkeypatch.setattr(
            cls, "tuning",
            dataclasses.replace(
                cls.tuning, call_overhead_us=cls.tuning.call_overhead_us + 1.0
            ),
        )
        clear_cost_caches()
        try:
            edited = Tuner(lassen(), ["nccl", "gloo"], mode="analytic").build_table(
                **grid, cache=cache
            )
            # only nccl's 3 cells recompute; gloo's 3 still hit
            assert edited.sweep_stats.cache_misses == 3
            assert edited.sweep_stats.cache_hits == 3
            nccl_lat = {
                (s.msg_bytes): s.latency_us
                for s in edited.samples if s.backend == "nccl"
            }
            cold_lat = {
                (s.msg_bytes): s.latency_us
                for s in cold.samples if s.backend == "nccl"
            }
            for msg in nccl_lat:
                assert nccl_lat[msg] == pytest.approx(cold_lat[msg] + 1.0)
        finally:
            clear_cost_caches()

    def test_measurement_params_are_part_of_the_key(self, tmp_path):
        grid = dict(world_sizes=[4], message_sizes=[1024], ops=[OpFamily.ALLREDUCE])
        cache = SweepCache(tmp_path)
        Tuner(lassen(), ["nccl"], mode="analytic", iterations=5).build_table(
            **grid, cache=cache
        )
        other = Tuner(lassen(), ["nccl"], mode="analytic", iterations=7).build_table(
            **grid, cache=cache
        )
        assert other.sweep_stats.cache_hits == 0  # different iterations: miss


class TestMicrobenchSweep:
    SIZES = [1024, 65536]

    def test_jobs_equivalent_to_serial(self):
        serial = sweep_backends(
            lassen(), ["nccl", "gloo"], OpFamily.ALLREDUCE, 8,
            message_sizes=self.SIZES,
        )
        parallel = sweep_backends(
            lassen(), ["nccl", "gloo"], OpFamily.ALLREDUCE, 8,
            message_sizes=self.SIZES, jobs=2,
        )
        assert parallel == serial

    def test_cache_warm_matches_cold(self, tmp_path):
        args = (lassen(), ["nccl", "gloo"], OpFamily.ALLREDUCE, 8)
        cold = sweep_backends(*args, message_sizes=self.SIZES,
                              cache=SweepCache(tmp_path))
        warm = sweep_backends(*args, message_sizes=self.SIZES,
                              cache=SweepCache(tmp_path))
        serial = sweep_backends(*args, message_sizes=self.SIZES)
        assert cold == warm == serial
