"""Unit tests for the observability primitives (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import LogHistogram, MetricsRegistry, ObsEvent


class TestLogHistogramPercentile:
    def test_p0_returns_tracked_minimum(self):
        """Regression: p=0 used to return the lowest occupied bucket's
        *upper bound*, which can exceed an observed sample."""
        h = LogHistogram()
        h.record(3.0)   # bucket 2 -> upper bound 4.0
        h.record(100.0)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(0.0) <= h.min

    def test_p100_returns_top_bucket_bound(self):
        h = LogHistogram()
        for v in (3.0, 5.0, 100.0):
            h.record(v)
        # 100 lands in bucket 7 -> upper bound 128
        assert h.percentile(100.0) == 128.0

    def test_top_bucket_path_has_no_dead_fallback(self):
        """Any percentile past the second-to-last edge resolves to the
        top bucket's bound (the old float-slack fallback was dead code)."""
        h = LogHistogram()
        h.record(2.0)    # bucket 1
        h.record(60.0)   # bucket 6
        # p75 -> target 1.5 samples: past bucket 1, lands in the top bucket
        assert h.percentile(75.0) == 64.0

    def test_single_bucket_all_percentiles_agree(self):
        h = LogHistogram()
        h.record(7.0)
        assert h.percentile(0.0) == 7.0
        assert h.percentile(50.0) == 8.0
        assert h.percentile(100.0) == 8.0

    def test_mid_percentile_conservative_bound(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 4.0, 8.0):
            h.record(v)
        assert h.percentile(50.0) == 2.0

    def test_empty_and_range_checks(self):
        h = LogHistogram()
        assert h.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)


class TestAdaptEventAccounting:
    def test_adapt_events_count_by_action(self):
        reg = MetricsRegistry()
        for action in ("drift", "explore", "retune", "retune", "probation"):
            reg.observe(
                ObsEvent(
                    kind="adapt",
                    rank=0,
                    stream="",
                    backend="nccl",
                    family=action,
                    nbytes=1 << 20,
                    step=-1,
                    start=0.0,
                    end=0.0,
                    detail="test",
                )
            )
        assert reg.counters["tuning.adapt.drift"] == 1
        assert reg.counters["tuning.adapt.retune"] == 2
        assert reg.counters["tuning.adapt.probation"] == 1
