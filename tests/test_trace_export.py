"""Chrome trace export from the tracer."""

import json

import pytest

from repro.core import MCRCommunicator
from repro.sim import Simulator


@pytest.fixture
def traced_result():
    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl"])
        ctx.launch(100.0, label="compute-k")
        h = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
        h.synchronize()
        comm.finalize()

    return Simulator(2, trace=True).run(main)


class TestChromeTrace:
    def test_complete_events_for_every_record(self, traced_result):
        events = traced_result.tracer.to_chrome_trace()
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(traced_result.tracer.records)

    def test_event_fields(self, traced_result):
        events = traced_result.tracer.to_chrome_trace()
        compute = next(e for e in events if e["ph"] == "X" and e["name"] == "compute-k")
        assert compute["dur"] == 100.0
        assert compute["cat"] == "compute"
        assert compute["pid"] in (0, 1)

    def test_thread_metadata_per_stream(self, traced_result):
        events = traced_result.tracer.to_chrome_trace()
        metas = [e for e in events if e["ph"] == "M"]
        names = {(m["pid"], m["args"]["name"]) for m in metas}
        assert (0, "default") in names
        assert any(stream.startswith("nccl:comm") for _, stream in names)

    def test_thread_ids_stable_within_rank(self, traced_result):
        events = traced_result.tracer.to_chrome_trace()
        seen: dict[tuple, set] = {}
        for e in events:
            if e["ph"] != "X":
                continue
            seen.setdefault((e["pid"], e["tid"]), set()).add(e["name"])
        # a (pid, tid) pair never mixes categories from different streams
        metas = {
            (m["pid"], m["tid"]): m["args"]["name"]
            for m in events
            if m["ph"] == "M"
        }
        assert all(key in metas for key in seen)

    def test_save_writes_valid_json(self, traced_result, tmp_path):
        path = tmp_path / "trace.json"
        traced_result.tracer.save_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert isinstance(payload, list) and payload

    def test_empty_tracer_exports_empty_list(self):
        from repro.sim.trace import Tracer

        assert Tracer().to_chrome_trace() == []
