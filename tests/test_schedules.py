"""Executable collective schedules: structure, data, and cost validation."""

import numpy as np
import pytest

from repro.backends import datapath
from repro.backends.ops import ReduceOp
from repro.backends.schedules import (
    binomial_broadcast_schedule,
    emulated_all_gather,
    emulated_all_reduce,
    emulated_broadcast,
    recursive_doubling_allgather_schedule,
    ring_allgather_schedule,
    ring_allreduce_schedule,
    schedule_stats,
)
from repro.core import MCRCommunicator
from repro.sim import Simulator


class TestScheduleStructure:
    @pytest.mark.parametrize("p", [2, 3, 4, 8])
    def test_ring_allreduce_round_count(self, p):
        """The analytic formula charges 2(p-1) rounds — the schedule has
        exactly that many."""
        schedule = ring_allreduce_schedule(p)
        assert schedule_stats(schedule, p)["rounds"] == 2 * (p - 1)

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_ring_allgather_round_count(self, p):
        assert schedule_stats(ring_allgather_schedule(p), p)["rounds"] == p - 1

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_recursive_doubling_round_count(self, p):
        schedule = recursive_doubling_allgather_schedule(p)
        assert schedule_stats(schedule, p)["rounds"] == int(np.log2(p))

    def test_recursive_doubling_requires_pow2(self):
        with pytest.raises(ValueError, match="power-of-two"):
            recursive_doubling_allgather_schedule(6)

    @pytest.mark.parametrize("p,expected", [(2, 1), (4, 2), (5, 3), (8, 3)])
    def test_binomial_broadcast_round_count(self, p, expected):
        assert schedule_stats(binomial_broadcast_schedule(p), p)["rounds"] == expected

    def test_ring_one_send_per_rank_per_round(self):
        """Rings are bandwidth-optimal because every rank sends exactly
        one chunk per round."""
        stats = schedule_stats(ring_allreduce_schedule(8), 8)
        assert stats["peak_sends_per_rank_round"] == 1

    def test_trivial_single_rank(self):
        assert ring_allreduce_schedule(1) == []
        assert binomial_broadcast_schedule(1) == []


def spmd(world, fn):
    def main(ctx):
        comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world).run(main).rank_results


class TestExecutedData:
    @pytest.mark.parametrize("p", [2, 3, 4, 5])
    def test_ring_allreduce_matches_collective(self, p):
        def fn(ctx, comm):
            buf = (np.arange(p * 4, dtype=np.float32) + ctx.rank * 100).copy()
            emulated_all_reduce(ctx, comm, "mvapich2-gdr", buf)
            return buf

        results = spmd(p, fn)
        expected = sum(
            np.arange(p * 4, dtype=np.float32) + r * 100 for r in range(p)
        )
        for data in results:
            assert np.allclose(data, expected)

    @pytest.mark.parametrize("op", [ReduceOp.SUM, ReduceOp.MAX])
    def test_ring_allreduce_ops(self, op):
        p = 4

        def fn(ctx, comm):
            rng = np.random.default_rng(ctx.rank)
            buf = rng.normal(size=p * 2).astype(np.float32)
            original = buf.copy()
            emulated_all_reduce(ctx, comm, "mvapich2-gdr", buf, op=op)
            return original, buf

        results = spmd(p, fn)
        ins = [orig for orig, _ in results]
        outs = [np.zeros_like(ins[0]) for _ in range(p)]
        datapath.all_reduce([a.copy() for a in ins], outs, op)
        for (_, executed), reference in zip(results, outs):
            assert np.allclose(executed, reference, rtol=1e-5)

    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_ring_allgather_matches_collective(self, p):
        def fn(ctx, comm):
            buf = np.zeros(p * 3, dtype=np.float32)
            buf[ctx.rank * 3 : (ctx.rank + 1) * 3] = ctx.rank + 1
            emulated_all_gather(ctx, comm, "mvapich2-gdr", buf)
            return buf

        expected = np.repeat(np.arange(1, p + 1, dtype=np.float32), 3)
        for data in spmd(p, fn):
            assert np.array_equal(data, expected)

    @pytest.mark.parametrize("p,root", [(2, 0), (4, 2), (5, 4)])
    def test_binomial_broadcast_matches_collective(self, p, root):
        def fn(ctx, comm):
            buf = (
                np.arange(6, dtype=np.float32)
                if ctx.rank == root
                else np.zeros(6, dtype=np.float32)
            )
            emulated_broadcast(ctx, comm, "mvapich2-gdr", buf, root=root)
            return buf

        for data in spmd(p, fn):
            assert np.array_equal(data, np.arange(6, dtype=np.float32))


class TestExecutedCostTracksFormula:
    def test_emulated_slower_than_native(self):
        """The paper's §I-A point: Option 1 (collectives from p2p inside
        the framework) sacrifices the tuned library's performance."""
        p, numel = 4, 4096

        def fn(ctx, comm):
            buf = np.ones(numel, dtype=np.float32)
            t0 = ctx.now
            emulated_all_reduce(ctx, comm, "mvapich2-gdr", buf)
            emulated_us = ctx.now - t0
            x = ctx.tensor(np.ones(numel, dtype=np.float32))
            t1 = ctx.now
            comm.all_reduce("mvapich2-gdr", x)
            native_us = ctx.now - t1
            return emulated_us, native_us

        results = spmd(p, fn)
        emulated = max(r[0] for r in results)
        native = max(r[1] for r in results)
        assert emulated > native

    def test_executed_time_scales_with_rounds(self):
        """More ranks -> more ring rounds -> proportionally more time,
        the structure the alpha term of the formula encodes."""

        def run(p):
            def fn(ctx, comm):
                buf = np.ones(64 * 12, dtype=np.float32)  # divisible by 2..8
                t0 = ctx.now
                emulated_all_gather(ctx, comm, "mvapich2-gdr", buf)
                return ctx.now - t0

            return max(spmd(p, fn))

        t2, t4, t8 = run(2), run(4), run(8)
        assert t2 < t4 < t8
        # rounds are 1, 3, 7: super-linear in p but sub-linear in 2^p
        assert t8 / t2 > 2.0
