"""The descriptor-driven op surface (core/comm.py + core/op_table.py).

Pins the two satellite contracts of the layered-core refactor:

* **uniform pre-dispatch hook chain** — ``retuner.before_op`` fires for
  *every* collective family (historically it was hand-inlined into the
  4 hier-capable ops only), and routing every family through the shared
  chain leaves healthy-path simulated time byte-identical;
* **barrier default backend** — ``barrier(backend=None)`` picks
  ``next(iter(self.backends))``, i.e. deterministic constructor
  insertion order, and a quarantined default reroutes to a survivor
  instead of raising.
"""

import numpy as np

from repro.core import MCRCommunicator, MCRConfig
from repro.core.config import AdaptiveConfig
from repro.sim import Simulator
from repro.sim.faults import BackendFault, FaultSpec

BACKENDS = ["nccl", "mvapich2-gdr"]


def _post_every_family(ctx, comm, backend="nccl"):
    """Post one collective of every family (world_size=2); returns the
    number posted and a data tensor whose final contents depend on most
    of them."""
    world = 2
    x = ctx.full(4, float(ctx.rank + 1))
    pair = ctx.zeros(4 * world)
    comm.all_reduce(backend, x)
    comm.reduce(backend, x, root=0)
    comm.bcast(backend, x, root=0)
    comm.all_gather(backend, pair, x)
    comm.reduce_scatter(backend, x, pair)
    comm.all_to_all_single(backend, pair, pair)
    comm.all_to_all(backend, [ctx.zeros(4), ctx.zeros(4)], [x, x])
    comm.gather(backend, x, pair if ctx.rank == 0 else None, root=0)
    comm.scatter(backend, x, pair if ctx.rank == 0 else None, root=0)
    comm.gatherv(backend, x, pair if ctx.rank == 0 else None, rcounts=[4, 4], root=0)
    comm.scatterv(backend, x, pair if ctx.rank == 0 else None, scounts=[4, 4], root=0)
    comm.all_gatherv(backend, pair, x, rcounts=[4, 4])
    comm.all_to_allv(backend, pair, pair, scounts=[4, 4], rcounts=[4, 4])
    comm.barrier(backend)
    comm.synchronize()
    return 14, x.data.copy()


class TestUniformHookChain:
    def test_pre_op_accounting_sees_every_family(self):
        """before_op increments the retuner's op index exactly once per
        posted collective — including reduce_scatter, reduce, and the
        vectored ops the old hand-inlined chain skipped."""

        def main(ctx):
            comm = MCRCommunicator(
                ctx,
                BACKENDS,
                config=MCRConfig(adaptive=AdaptiveConfig(enabled=True)),
            )
            posted, _ = _post_every_family(ctx, comm)
            snap = comm.retuner.snapshot()
            comm.finalize()
            return posted, snap["ops"]

        results = Simulator(2).run(main).rank_results
        for posted, ops in results:
            assert ops == posted == 14
        # symmetric accounting: every rank counted identically
        assert len({ops for _, ops in results}) == 1

    def test_vectored_and_reduce_families_counted_individually(self):
        def main(ctx):
            comm = MCRCommunicator(
                ctx,
                BACKENDS,
                config=MCRConfig(adaptive=AdaptiveConfig(enabled=True)),
            )
            x = ctx.full(4, 1.0)
            pair = ctx.zeros(8)
            before = comm.retuner.snapshot()["ops"]
            comm.reduce("nccl", x, root=0)
            comm.reduce_scatter("nccl", x, pair)
            comm.gatherv("nccl", x, pair if ctx.rank == 0 else None, rcounts=[4, 4])
            comm.all_to_allv("nccl", pair, pair, scounts=[4, 4], rcounts=[4, 4])
            comm.synchronize()
            after = comm.retuner.snapshot()["ops"]
            comm.finalize()
            return after - before

        for delta in Simulator(2).run(main).rank_results:
            assert delta == 4

    def test_healthy_path_time_identity_with_adaptive_enabled(self):
        """Routing every family through the shared hook chain must not
        move healthy-path simulated time: adaptive-on (epsilon=0, no
        drift) and adaptive-off runs are byte-identical."""

        def job(adaptive):
            def main(ctx):
                config = MCRConfig()
                if adaptive:
                    config.adaptive = AdaptiveConfig(enabled=True)
                comm = MCRCommunicator(ctx, BACKENDS, config=config)
                _, data = _post_every_family(ctx, comm)
                comm.finalize()
                return ctx.now, data

            return Simulator(2).run(main)

        on, off = job(True), job(False)
        assert on.elapsed_us == off.elapsed_us
        for (t_on, d_on), (t_off, d_off) in zip(on.rank_results, off.rank_results):
            assert t_on == t_off
            assert np.array_equal(d_on, d_off)


class TestBarrierDefault:
    def _barrier_backend(self, backends, faults=None):
        """Run one default-backend barrier under logging; return
        (recorded barrier backends, quarantined sets) per rank."""

        def main(ctx):
            comm = MCRCommunicator(
                ctx, backends, config=MCRConfig(enable_logging=True)
            )
            comm.barrier()
            comm.synchronize()
            quarantined = sorted(comm._quarantined)
            comm.finalize()
            return quarantined

        sim = Simulator(2, faults=faults) if faults else Simulator(2)
        res = sim.run(main)
        logger = res.shared["comm_logger"]
        barrier_backends = {r.backend for r in logger.records if r.family == "barrier"}
        return barrier_backends, res.rank_results

    def test_default_is_first_inserted_backend(self):
        used, _ = self._barrier_backend(["mvapich2-gdr", "nccl"])
        assert used == {"mvapich2-gdr"}
        used, _ = self._barrier_backend(["nccl", "mvapich2-gdr"])
        assert used == {"nccl"}

    def test_quarantined_default_reroutes_instead_of_raising(self):
        """With the insertion-order default permanently faulted, the
        barrier must fail over to the surviving backend."""
        faults = FaultSpec(
            backend_faults=(
                BackendFault(backend="mvapich2-gdr", kind="permanent", at_op=1),
            ),
        )
        used, quarantines = self._barrier_backend(["mvapich2-gdr", "nccl"], faults)
        assert used == {"nccl"}
        for quarantined in quarantines:
            assert "mvapich2-gdr" in quarantined
