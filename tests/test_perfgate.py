"""Tier-1 wrapper around ``scripts/perfgate.py``.

The perf gate's fingerprint check is the contract that fault-injection
gates and observability hooks (and any other runtime change) leave
healthy-path simulated timings bit-identical to the committed baseline.
Running it from the test suite means a fingerprint drift fails CI, not
just the optional perf workflow.  Wall-clock tolerance is set huge:
shared CI machines are noisy and the wall check already has its own
dedicated harness.
"""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
PERFGATE = REPO / "scripts" / "perfgate.py"
BASELINE = REPO / "BENCH_simulator.json"


def load_perfgate():
    spec = importlib.util.spec_from_file_location("perfgate", PERFGATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(not BASELINE.exists(), reason="no committed baseline")
def test_simulated_fingerprints_match_committed_baseline():
    perfgate = load_perfgate()
    rc = perfgate.main(
        ["--baseline", str(BASELINE), "--repeats", "1", "--tolerance", "1000"]
    )
    assert rc == 0


def test_missing_baseline_is_unusable_not_a_pass(tmp_path):
    perfgate = load_perfgate()
    missing = tmp_path / "does_not_exist.json"
    assert perfgate.main(["--baseline", str(missing)]) == 2


def test_observability_has_zero_simulated_overhead():
    """Instrumentation records events without moving simulated time."""
    from repro.bench import perfregress

    metrics = perfregress.SCENARIOS["obs_overhead"]()
    assert metrics["events_recorded"] > 0
    assert metrics["sim_instrumented_step_us"] == metrics["sim_step_us"]
    assert metrics["sim_overhead_pct"] == 0.0


def _obs_metrics(overhead_pct: float) -> dict:
    return {
        "wall_s": 0.1,
        "events_recorded": 10,
        "sim_step_us": 100.0,
        "sim_instrumented_step_us": 100.0 + overhead_pct,
        "sim_overhead_pct": overhead_pct,
    }


def _run_gate_with(monkeypatch, tmp_path, baseline_metrics, fresh_metrics):
    perfgate = load_perfgate()
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(
        {"schema": 1, "after": {"scenarios": {"obs_overhead": baseline_metrics}}}
    ))
    monkeypatch.setattr(
        perfgate.perfregress, "run_scenarios",
        lambda *a, **k: {"obs_overhead": fresh_metrics},
    )
    return perfgate.main(
        ["--baseline", str(path), "--repeats", "1", "--tolerance", "1000"]
    )


def test_gate_fails_when_obs_budget_exceeded(monkeypatch, tmp_path):
    # fingerprints agree (baseline == fresh), so the only violation is
    # the instrumented path costing more than the 5% budget
    over = _obs_metrics(7.0)
    assert _run_gate_with(monkeypatch, tmp_path, over, dict(over)) == 1


def test_gate_passes_within_obs_budget(monkeypatch, tmp_path):
    ok = _obs_metrics(0.0)
    assert _run_gate_with(monkeypatch, tmp_path, ok, dict(ok)) == 0
