"""Tier-1 wrapper around ``scripts/perfgate.py``.

The perf gate's fingerprint check is the contract that fault-injection
gates (and any other runtime change) leave healthy-path simulated
timings bit-identical to the committed baseline.  Running it from the
test suite means a fingerprint drift fails CI, not just the optional
perf workflow.  Wall-clock tolerance is set huge: shared CI machines
are noisy and the wall check already has its own dedicated harness.
"""

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
PERFGATE = REPO / "scripts" / "perfgate.py"
BASELINE = REPO / "BENCH_simulator.json"


def load_perfgate():
    spec = importlib.util.spec_from_file_location("perfgate", PERFGATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(not BASELINE.exists(), reason="no committed baseline")
def test_simulated_fingerprints_match_committed_baseline():
    perfgate = load_perfgate()
    rc = perfgate.main(
        ["--baseline", str(BASELINE), "--repeats", "1", "--tolerance", "1000"]
    )
    assert rc == 0


def test_missing_baseline_is_unusable_not_a_pass(tmp_path):
    perfgate = load_perfgate()
    missing = tmp_path / "does_not_exist.json"
    assert perfgate.main(["--baseline", str(missing)]) == 2
