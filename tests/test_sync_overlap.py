"""Synchronization semantics (paper §V-C, Fig. 4): naive serialization vs
MCR-DL's fine-grained CUDA-event scheme; stream pools; overlap."""

import pytest

from repro.core import MCRCommunicator, MCRConfig
from repro.sim import Simulator


def listing3(ctx, config, comm_size=1 << 22):
    """The paper's Listing 3: allreduce(x) overlapped with y = y + y."""
    comm = MCRCommunicator(ctx, ["nccl"], config=config)
    x = ctx.virtual_tensor(comm_size)
    h = comm.all_reduce("nccl", x, async_op=True)
    ctx.launch(400.0, label="y=y+y")  # independent of x
    h.wait()
    ctx.launch(50.0, label="x+y")  # depends on both
    comm.finalize()
    return ctx.now


class TestFigure4:
    def test_fine_grained_overlaps_naive_serializes(self):
        fine = Simulator(4, trace=True).run(
            listing3, MCRConfig(synchronization="fine-grained")
        )
        naive = Simulator(4, trace=True).run(
            listing3, MCRConfig(synchronization="naive")
        )
        assert fine.elapsed_us < naive.elapsed_us

    def test_fine_grained_compute_comm_overlap_positive(self):
        res = Simulator(2, trace=True).run(
            listing3, MCRConfig(synchronization="fine-grained")
        )
        comm = res.tracer.filter(rank=0, category="comm")
        compute = res.tracer.filter(rank=0, label_contains="y=y+y")
        assert res.tracer.overlap_time(comm, compute) > 0

    def test_naive_has_no_overlap(self):
        res = Simulator(2, trace=True).run(
            listing3, MCRConfig(synchronization="naive")
        )
        comm = res.tracer.filter(rank=0, category="comm")
        compute = res.tracer.filter(rank=0, label_contains="y=y+y")
        assert res.tracer.overlap_time(comm, compute) == pytest.approx(0.0)

    def test_dependent_kernel_ordered_after_comm(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.virtual_tensor(1 << 22)
            h = comm.all_reduce("nccl", x, async_op=True)
            h.wait()
            node = ctx.launch(10.0, label="consumer")
            ctx.device_synchronize()
            comm.finalize()
            return node.start

        res = Simulator(2, trace=True).run(main)
        comm_end = max(r.end for r in res.tracer.filter(rank=0, category="comm"))
        assert all(start >= comm_end for start in res.rank_results)


class TestStreamPools:
    def test_small_messages_round_robin(self):
        def main(ctx):
            config = MCRConfig(streams_per_backend=3)
            comm = MCRCommunicator(ctx, ["nccl"], config=config)
            for _ in range(3):
                comm.all_reduce("nccl", ctx.zeros(16), async_op=True).wait()
            comm.finalize()
            return sorted(
                name for name in ctx.gpu.streams if name.startswith("nccl:comm")
            )

        res = Simulator(2).run(main)
        assert res.rank_results[0] == ["nccl:comm0", "nccl:comm1", "nccl:comm2"]

    def test_large_messages_pinned_to_stream0(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            for _ in range(3):
                comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True).wait()
            comm.finalize()

        res = Simulator(2, trace=True).run(main)
        comm_recs = res.tracer.filter(rank=0, category="comm")
        assert {r.stream for r in comm_recs} == {"nccl:comm0"}

    def test_concurrent_small_ops_overlap(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            handles = [
                # just under the large-message threshold: small enough to
                # round-robin across the pool, big enough to outlast the
                # host's posting gap
                comm.all_reduce("nccl", ctx.zeros(16000), async_op=True)
                for _ in range(4)
            ]
            for h in handles:
                h.synchronize()
            comm.finalize()

        res = Simulator(8, trace=True).run(main)
        recs = res.tracer.filter(rank=0, category="comm")
        assert len(recs) == 4
        union = res.tracer.busy_time(recs)
        total = sum(r.duration for r in recs)
        assert union < total  # at least two ran concurrently


class TestHandleSemantics:
    def test_nccl_wait_does_not_block_host(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            ctx.sleep(ctx.rank * 5000.0)  # rank 1 arrives late
            x = ctx.virtual_tensor(1 << 22)
            h = comm.all_reduce("nccl", x, async_op=True)
            t0 = ctx.now
            h.wait()
            host_block = ctx.now - t0
            comm.finalize()
            return host_block

        res = Simulator(2).run(main)
        assert res.rank_results[0] < 1.0  # rank 0 did not wait for rank 1

    def test_mpi_wait_blocks_host(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            ctx.sleep(ctx.rank * 5000.0)
            x = ctx.virtual_tensor(1 << 22)
            h = comm.all_reduce("mvapich2-gdr", x, async_op=True)
            t0 = ctx.now
            h.wait()
            host_block = ctx.now - t0
            comm.finalize()
            return host_block

        res = Simulator(2).run(main)
        assert res.rank_results[0] >= 5000.0  # MPI_Wait until rank 1 arrived

    def test_synchronize_always_blocks(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.virtual_tensor(1 << 22)
            h = comm.all_reduce("nccl", x, async_op=True)
            h.synchronize()
            done = h.is_completed()
            comm.finalize()
            return done

        assert all(Simulator(2).run(main).rank_results)

    def test_wait_wrong_backend_rejected(self):
        from repro.core import MCRError

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            h = comm.all_reduce("nccl", ctx.zeros(4), async_op=True)
            h.wait("mvapich2-gdr")

        with pytest.raises(MCRError, match="belongs to backend"):
            Simulator(2).run(main)

    def test_completion_time_exposed(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            h = comm.all_reduce("mvapich2-gdr", ctx.zeros(4), async_op=True)
            h.synchronize()
            t = h.completion_time
            comm.finalize()
            return t

        res = Simulator(2).run(main)
        assert res.rank_results[0] is not None and res.rank_results[0] > 0


class TestSynchronizeAPI:
    def test_synchronize_drains_outstanding(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            h1 = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
            h2 = comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(1 << 20), async_op=True)
            comm.synchronize()
            ok = h1.is_completed() and h2.is_completed()
            comm.finalize()
            return ok

        assert all(Simulator(2).run(main).rank_results)

    def test_synchronize_single_backend(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            h = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
            comm.synchronize("nccl")
            ok = h.is_completed()
            comm.finalize()
            return ok

        assert all(Simulator(2).run(main).rank_results)
