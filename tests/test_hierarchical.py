"""Hierarchical mixed-backend collectives (``hier:<intra>+<inter>``).

The composite contract: a ``hier:`` target decomposes a collective into
intra-node and inter-node phases over auto-derived process groups, the
data result is byte-identical to a flat backend on every group shape
(full world, node-spanning subsets, interleaved and uneven placements),
the analytic cost model exposes a Fig. 2-style crossover the tuner can
exploit through ``"auto"``, and the surrounding machinery — plan cache,
fault failover, phase-tagged observability — keeps working per phase.
"""

import numpy as np
import pytest

from repro.backends.hierarchical import (
    HIER_FAMILIES,
    HierSpec,
    derive_layout,
    hier_collective_cost_us,
    is_hier_name,
    parse_hier,
)
from repro.backends.ops import OpFamily
from repro.cluster import generic_cluster, lassen
from repro.core import BackendError, MCRCommunicator, MCRConfig, ReduceOp, Tuner
from repro.core.tuning import TuningTable
from repro.sim import Simulator
from repro.sim.faults import BackendFault, FaultSpec

BACKENDS = ["nccl", "mvapich2-gdr"]
HIER = "hier:nccl+mvapich2-gdr"


def spmd(world, fn, system=None, ranks=None, config=None, faults=None):
    system = system or lassen()

    def main(ctx):
        if ranks is not None and ctx.rank not in ranks:
            return None
        comm = MCRCommunicator(
            ctx,
            list(BACKENDS),
            ranks=ranks,
            comm_id="hier-test" if ranks is not None else "world",
            config=config,
        )
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world, system=system, faults=faults).run(main).rank_results


class TestParsing:
    def test_roundtrip_and_aliases(self):
        spec = parse_hier("hier:nccl+mvapich")
        assert spec == HierSpec("hier:nccl+mvapich2-gdr", "nccl", "mvapich2-gdr")
        assert parse_hier("HIER:NCCL+MPI").inter == "mvapich2-gdr"

    def test_same_backend_both_levels_allowed(self):
        spec = parse_hier("hier:nccl+nccl")
        assert spec.intra == spec.inter == "nccl"

    @pytest.mark.parametrize(
        "bad",
        ["hier:", "hier:nccl", "hier:nccl+", "hier:+nccl",
         "hier:nccl+mvapich+ucc", "hier:nccl+bogus"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(BackendError):
            parse_hier(bad)

    def test_is_hier_name(self):
        assert is_hier_name("hier:nccl+ucc")
        assert is_hier_name("HIER:x+y")
        assert not is_hier_name("nccl")
        assert not is_hier_name("auto")


class TestLayout:
    def test_dense_world(self):
        layout = derive_layout(lassen(), range(16))
        assert layout.uniform and layout.ppn == 4
        assert [len(m) for m in layout.node_members] == [4, 4, 4, 4]

    def test_uneven_group(self):
        layout = derive_layout(lassen(), [0, 1, 2, 4])
        assert not layout.uniform
        assert layout.node_members == ((0, 1, 2), (4,))

    def test_interleaved_group_keeps_first_appearance_order(self):
        layout = derive_layout(lassen(), [0, 4, 1, 5])
        assert layout.uniform and layout.ppn == 2
        assert layout.node_members == ((0, 1), (4, 5))


class TestCorrectness:
    """Data identity with a flat backend on every group shape."""

    def test_all_reduce_sum_world(self):
        def fn(ctx, comm):
            x = ctx.full(64, float(ctx.rank + 1))
            comm.all_reduce(HIER, x)
            comm.synchronize()
            return x.data.copy()

        for data in spmd(16, fn):
            assert np.array_equal(data, np.full(64, 136.0))

    @pytest.mark.parametrize("op,expect", [(ReduceOp.MAX, 16.0), (ReduceOp.AVG, 8.5)])
    def test_all_reduce_other_ops(self, op, expect):
        def fn(ctx, comm):
            x = ctx.full(8, float(ctx.rank + 1))
            comm.all_reduce(HIER, x, op=op)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(16, fn) == [expect] * 16

    def test_all_reduce_indivisible_numel_leader_path(self):
        # numel=7 is not divisible by ppn=4: falls off the sharded path
        def fn(ctx, comm):
            x = ctx.full(7, float(ctx.rank + 1))
            comm.all_reduce(HIER, x)
            comm.synchronize()
            return x.data.copy()

        for data in spmd(16, fn):
            assert np.array_equal(data, np.full(7, 136.0))

    def test_bcast_from_non_leader_root(self):
        def fn(ctx, comm):
            x = ctx.full(16, float(ctx.rank))
            comm.bcast(HIER, x, root=5)  # mid-node root on node 1
            comm.synchronize()
            return float(x.data[0])

        assert spmd(16, fn) == [5.0] * 16

    def test_all_gather_world(self):
        def fn(ctx, comm):
            x = ctx.full(3, float(ctx.rank))
            out = ctx.zeros(3 * comm.world_size)
            comm.all_gather(HIER, out, x)
            comm.synchronize()
            return out.data.copy()

        for data in spmd(16, fn):
            assert np.array_equal(data, np.repeat(np.arange(16.0), 3))

    def test_all_to_all_single_world(self):
        def fn(ctx, comm):
            x = ctx.tensor([100.0 * ctx.rank + j for j in range(comm.world_size)])
            out = ctx.zeros(comm.world_size)
            comm.all_to_all_single(HIER, out, x)
            comm.synchronize()
            return out.data.copy()

        for j, data in enumerate(spmd(16, fn)):
            assert np.array_equal(data, [100.0 * i + j for i in range(16)])

    def test_subgroup_spanning_nodes(self):
        ranks = [0, 1, 4, 5, 8, 9, 12, 13]

        def fn(ctx, comm):
            x = ctx.full(8, float(ctx.rank + 1))
            comm.all_reduce(HIER, x)
            comm.synchronize()
            return float(x.data[0])

        results = spmd(16, fn, ranks=ranks)
        expect = float(sum(r + 1 for r in ranks))
        assert [results[r] for r in ranks] == [expect] * len(ranks)

    def test_interleaved_group_all_ops(self):
        # group rank order != node order: exercises the gather permute
        # and the all-to-all pack/unpack permutations
        ranks = [0, 4, 1, 5]

        def fn(ctx, comm):
            g = comm.rank
            red = ctx.full(4, float(g + 1))
            comm.all_reduce(HIER, red, op=ReduceOp.AVG)
            gat_in = ctx.full(2, float(g))
            gat = ctx.zeros(2 * comm.world_size)
            comm.all_gather(HIER, gat, gat_in)
            a2a_in = ctx.tensor([10.0 * g + j for j in range(comm.world_size)])
            a2a = ctx.zeros(comm.world_size)
            comm.all_to_all_single(HIER, a2a, a2a_in)
            comm.synchronize()
            return (float(red.data[0]), gat.data.copy(), a2a.data.copy())

        results = spmd(16, fn, ranks=ranks)
        for g, rank in enumerate(ranks):
            red, gat, a2a = results[rank]
            assert red == 2.5
            assert np.array_equal(gat, np.repeat(np.arange(4.0), 2))
            assert np.array_equal(a2a, [10.0 * i + g for i in range(4)])

    def test_uneven_group_falls_back_per_phase(self):
        # {0,1,2,4}: 3 ranks on node 0, 1 on node 1 — non-uniform, so
        # allreduce takes the leader scheme (AVG: flat inter fallback),
        # bcast still runs three phases, gather/a2a fall back flat
        ranks = [0, 1, 2, 4]

        def fn(ctx, comm):
            s = ctx.full(4, float(ctx.rank + 1))
            comm.all_reduce(HIER, s)
            a = ctx.full(4, float(ctx.rank + 1))
            comm.all_reduce(HIER, a, op=ReduceOp.AVG)
            b = ctx.full(2, float(ctx.rank))
            comm.bcast(HIER, b, root=3)  # group rank 3 == global 4
            g = ctx.zeros(comm.world_size)
            comm.all_gather(HIER, g, ctx.full(1, float(comm.rank)))
            comm.synchronize()
            return (float(s.data[0]), float(a.data[0]), float(b.data[0]), g.data.copy())

        results = spmd(16, fn, ranks=ranks)
        for rank in ranks:
            s, a, b, g = results[rank]
            assert s == 1 + 2 + 3 + 5
            assert a == (1 + 2 + 3 + 5) / 4
            assert b == 4.0
            assert np.array_equal(g, np.arange(4.0))

    def test_single_node_degenerates_to_flat_intra(self):
        def fn(ctx, comm):
            x = ctx.full(4, float(ctx.rank + 1))
            comm.all_reduce(HIER, x)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(4, fn) == [10.0] * 4

    def test_virtual_tensors_and_async(self):
        def fn(ctx, comm):
            x = ctx.virtual_tensor(1 << 16)
            h = comm.all_reduce(HIER, x, async_op=True)
            h.synchronize()
            comm.synchronize()
            return ctx.now

        times = spmd(16, fn)
        assert all(t > 0 for t in times)
        # the final phase is intra-node, so completion times agree per node
        for node in range(4):
            assert len({times[r] for r in range(node * 4, node * 4 + 4)}) == 1


class TestErrors:
    def test_unsupported_family_rejected(self):
        def fn(ctx, comm):
            out = ctx.zeros(1)
            with pytest.raises(BackendError, match="hier"):
                comm.reduce_scatter(HIER, out, ctx.zeros(comm.world_size))
            return True

        assert all(spmd(4, fn))

    def test_constituent_missing_from_communicator(self):
        def fn(ctx, comm):
            with pytest.raises(BackendError):
                comm.all_reduce("hier:nccl+ucc", ctx.zeros(4))
            return True

        assert all(spmd(4, fn))


class TestAutoDispatch:
    def _table(self):
        table = TuningTable(system="lassen")
        table.add("allreduce", 16, 4096, "nccl")
        table.add("allreduce", 16, 4 << 20, HIER)
        return table

    def test_auto_routes_hier_per_message_size(self):
        def fn(ctx, comm):
            comm.tuning_table = self._table()
            small = ctx.full(1024, 1.0)  # 4 KiB
            comm.all_reduce("auto", small)
            comm.synchronize()
            hier_after_small = comm._hier_exec is not None
            big = ctx.full(1 << 20, 1.0)  # 4 MiB
            comm.all_reduce("auto", big)
            comm.synchronize()
            return (
                hier_after_small,
                comm._hier_exec is not None,
                float(small.data[0]),
                float(big.data[0]),
            )

        for used_small, used_big, small, big in spmd(16, fn):
            assert not used_small and used_big
            assert small == 16.0 and big == 16.0

    def test_auto_skips_hier_when_constituent_quarantined(self):
        faults = FaultSpec(
            backend_faults=(BackendFault(backend="nccl", kind="permanent", at_op=1),)
        )

        def fn(ctx, comm):
            comm.tuning_table = self._table()
            x = ctx.full(1 << 20, float(ctx.rank + 1))
            comm.all_reduce("auto", x)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(16, fn, faults=faults) == [136.0] * 16


class TestResilience:
    def test_explicit_hier_survives_permanent_fault(self):
        faults = FaultSpec(
            backend_faults=(BackendFault(backend="nccl", kind="permanent", at_op=2),)
        )

        def fn(ctx, comm):
            x = ctx.full(16, float(ctx.rank + 1))
            for _ in range(4):
                comm.all_reduce(HIER, x)
                comm.synchronize()
            return float(x.data[0])

        results = spmd(8, fn, faults=faults)
        assert len(set(results)) == 1  # phases failed over symmetrically

    def test_plan_cache_byte_identity(self):
        def job(plan_cache):
            def fn(ctx, comm):
                x = ctx.full(1024, float(ctx.rank + 1))
                for _ in range(3):
                    comm.all_reduce(HIER, x)
                    comm.synchronize()
                return (ctx.now, x.data.tobytes())

            return spmd(16, fn, config=MCRConfig(plan_cache=plan_cache))

        assert job(True) == job(False)


class TestObservability:
    def test_phase_tagged_comm_records(self):
        def fn(ctx, comm):
            x = ctx.full(1024, 1.0)
            comm.all_reduce(HIER, x)
            comm.synchronize()
            from repro.ext.logging_ext import CommLogger

            log = CommLogger.shared(ctx)
            return sorted({r.phase for r in log.records if r.phase})

        phases = spmd(16, fn, config=MCRConfig(enable_logging=True))[0]
        assert phases == ["inter", "intra"]

    def test_flat_ops_stay_untagged(self):
        def fn(ctx, comm):
            x = ctx.full(64, 1.0)
            comm.all_reduce("nccl", x)
            comm.synchronize()
            from repro.ext.logging_ext import CommLogger

            log = CommLogger.shared(ctx)
            return all(r.phase == "" for r in log.records)

        assert all(spmd(4, fn, config=MCRConfig(enable_logging=True)))


class TestAnalyticCost:
    def test_supported_families_finite_unsupported_inf(self):
        spec = parse_hier(HIER)
        for fam in HIER_FAMILIES:
            assert hier_collective_cost_us(lassen(), spec, fam, 1 << 20, 16) > 0
        assert hier_collective_cost_us(
            lassen(), spec, OpFamily.REDUCE_SCATTER, 1 << 20, 16
        ) == float("inf")

    @staticmethod
    def _flat_costs(system, nbytes, p):
        from repro.backends.base import create_backend

        return [
            create_backend(name, 0, p, system).collective_cost_us(
                OpFamily.ALLREDUCE, nbytes, p, system.comm_path(p)
            )
            for name in BACKENDS
        ]

    def test_crossover_composite_wins_large_messages(self):
        system = lassen()
        spec = parse_hier(HIER)
        big = 16 << 20
        hier_cost = hier_collective_cost_us(system, spec, OpFamily.ALLREDUCE, big, 16)
        assert hier_cost < min(self._flat_costs(system, big, 16))

    def test_tuner_sweep_emits_hier_cells(self):
        table = (
            Tuner(lassen(), BACKENDS + [HIER], mode="analytic")
            .build_table(
                world_sizes=[16],
                message_sizes=[4096, 4 << 20, 64 << 20],
                ops=[OpFamily.ALLREDUCE],
            )
            .table
        )
        assert table.lookup("allreduce", 16, 64 << 20) == HIER
        assert not str(table.lookup("allreduce", 16, 4096)).startswith("hier:")

    def test_single_gpu_nodes_never_prefer_hier(self):
        # ppn == 1: no intra level exists, the composite must not win
        system = generic_cluster(gpus_per_node=1, max_nodes=16)
        spec = parse_hier(HIER)
        cost = hier_collective_cost_us(system, spec, OpFamily.ALLREDUCE, 4 << 20, 8)
        assert cost >= min(self._flat_costs(system, 4 << 20, 8)) * 0.99


class TestSimulatedCrossover:
    def test_hier_beats_both_constituents_at_4mib(self):
        system = lassen()

        def timed(target):
            def main(ctx):
                comm = MCRCommunicator(ctx, list(BACKENDS))
                x = ctx.virtual_tensor(1 << 20)  # 4 MiB fp32
                comm.all_reduce(target, x)
                comm.synchronize()
                start = ctx.now
                for _ in range(4):
                    comm.all_reduce(target, x)
                comm.synchronize()
                elapsed = ctx.now - start
                comm.finalize()
                return elapsed

            return max(Simulator(16, system=system).run(main).rank_results)

        hier_us = timed(HIER)
        assert hier_us < timed("nccl")
        assert hier_us < timed("mvapich2-gdr")
