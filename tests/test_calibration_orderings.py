"""The paper's qualitative performance orderings (DESIGN.md §5.4).

These are the load-bearing calibration facts the figures depend on; if a
calibration change breaks one of them, a figure's *shape* breaks too.
"""

import pytest

from repro.backends.ops import OpFamily
from repro.cluster import lassen, thetagpu
from repro.core import Tuner

BACKENDS = ["mvapich2-gdr", "nccl", "msccl"]


@pytest.fixture(scope="module")
def tuner():
    return Tuner(lassen(), BACKENDS, mode="analytic")


def best(tuner, family, nbytes, world):
    lat = {b: tuner.measure(b, family, nbytes, world) for b in BACKENDS}
    return min(lat, key=lat.get)


class TestTableIIShape:
    """Allgather at one world size: MV2 small, NCCL mid, SCCL large."""

    @pytest.mark.parametrize("msg", [256, 512, 1024, 2048])
    def test_small_goes_to_mvapich(self, tuner, msg):
        assert best(tuner, OpFamily.ALLGATHER, msg, 16) == "mvapich2-gdr"

    @pytest.mark.parametrize("msg", [4096, 8192])
    def test_mid_goes_to_nccl(self, tuner, msg):
        assert best(tuner, OpFamily.ALLGATHER, msg, 16) == "nccl"

    @pytest.mark.parametrize("msg", [16384, 32768, 1 << 20])
    def test_large_goes_to_sccl(self, tuner, msg):
        assert best(tuner, OpFamily.ALLGATHER, msg, 16) == "msccl"


class TestAllreduceOrdering:
    def test_mvapich_wins_small(self, tuner):
        """§V-F: MVAPICH2-GDR consistently best for small messages."""
        assert best(tuner, OpFamily.ALLREDUCE, 1024, 64) == "mvapich2-gdr"

    @pytest.mark.parametrize("msg", [1 << 20, 16 << 20, 64 << 20])
    def test_nccl_wins_dl_range(self, tuner, msg):
        """§VI-B: NCCL's Allreduce is best at DL message sizes."""
        assert best(tuner, OpFamily.ALLREDUCE, msg, 64) == "nccl"

    def test_ordering_holds_on_thetagpu_too(self):
        """§V-F: general trends hold across coarsely similar systems."""
        theta = Tuner(thetagpu(), BACKENDS, mode="analytic")
        assert best(theta, OpFamily.ALLREDUCE, 1024, 32) == "mvapich2-gdr"
        assert best(theta, OpFamily.ALLREDUCE, 16 << 20, 32) == "nccl"


class TestAlltoallOrdering:
    @pytest.mark.parametrize("world", [16, 64, 256])
    def test_mvapich_wins_at_scale(self, tuner, world):
        """Fig. 2(b): MVAPICH2-GDR's pairwise Alltoall dominates."""
        assert best(tuner, OpFamily.ALLTOALL, 1 << 20, world) == "mvapich2-gdr"

    def test_nccl_alltoall_degrades_faster_with_scale(self, tuner):
        """The per-peer latency of NCCL's p2p Alltoall (Fig. 2b)."""

        def ratio(world):
            nccl = tuner.measure("nccl", OpFamily.ALLTOALL, 1 << 20, world)
            mv2 = tuner.measure("mvapich2-gdr", OpFamily.ALLTOALL, 1 << 20, world)
            return nccl / mv2

        assert ratio(256) > ratio(64) > ratio(16) > 1.0


class TestSmallMessageLatency:
    @pytest.mark.parametrize(
        "family",
        [OpFamily.ALLREDUCE, OpFamily.ALLGATHER, OpFamily.BROADCAST, OpFamily.ALLTOALL],
    )
    def test_mvapich_wins_256B_everywhere(self, tuner, family):
        assert best(tuner, family, 256, 16) == "mvapich2-gdr"


class TestCrossSizeMonotonicity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "family", [OpFamily.ALLREDUCE, OpFamily.ALLTOALL, OpFamily.ALLGATHER]
    )
    def test_latency_monotonic_in_message_size(self, tuner, backend, family):
        sizes = [256 * (2**i) for i in range(12)]
        lat = [tuner.measure(backend, family, s, 16) for s in sizes]
        assert all(b >= a for a, b in zip(lat, lat[1:]))
