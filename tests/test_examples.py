"""Smoke-run every example script end to end (subprocess)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=script.parents[1],
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_all_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "moe_training",
        "dlrm_overlap",
        "autotuning",
        "deadlock_freedom",
        "megatron_zero",
        "pipeline_parallel",
        "compression",
    } <= names
