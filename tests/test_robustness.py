"""Failure injection and lifecycle robustness."""

import pytest

from repro.core import MCRCommunicator, MCRError, ValidationError
from repro.sim import DeadlockError, Simulator


class TestRankFailures:
    def test_exception_mid_collective_unwinds_peers(self):
        """A rank dying while others wait in a collective must abort the
        whole job with the original error, not hang."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            if ctx.rank == 1:
                raise RuntimeError("rank 1 crashed")
            comm.all_reduce("mvapich2-gdr", ctx.zeros(4))  # waits forever
            comm.finalize()

        with pytest.raises(RuntimeError, match="rank 1 crashed"):
            Simulator(3).run(main)

    def test_exception_after_async_post(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.all_reduce("nccl", ctx.zeros(4), async_op=True)
            if ctx.rank == 0:
                raise ValueError("boom")
            comm.finalize()

        with pytest.raises(ValueError, match="boom"):
            Simulator(2).run(main)

    def test_partial_exit_with_dangling_collective_detected(self):
        """A rank that returns without matching a peer's collective is a
        hang; the implicit device-join surfaces it as a deadlock."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            if ctx.rank == 0:
                comm.all_reduce("nccl", ctx.zeros(4), async_op=True)
            # rank 1 never participates and both exit

        with pytest.raises(DeadlockError):
            Simulator(2).run(main)


class TestLifecycle:
    def test_use_after_finalize_rejected(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.finalize()
            comm.all_reduce("nccl", ctx.zeros(4))

        with pytest.raises(MCRError, match="finalized"):
            Simulator(2).run(main)

    def test_double_finalize_is_idempotent(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.finalize()
            comm.finalize()
            return True

        assert all(Simulator(2).run(main).rank_results)

    def test_finalize_drains_outstanding_work(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            h1 = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
            h2 = comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(1 << 20), async_op=True)
            comm.finalize()
            return h1.is_completed() and h2.is_completed()

        assert all(Simulator(2).run(main).rank_results)

    def test_unknown_backend_dispatch_rejected(self):
        from repro.core import BackendError

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.all_reduce("mvapich2-gdr", ctx.zeros(4))

        with pytest.raises(BackendError, match="not initialized"):
            Simulator(2).run(main)


class TestMixedRealVirtual:
    def test_virtual_and_real_ranks_must_agree(self):
        """One rank passing a virtual tensor while another passes real
        data is a program bug; the rendezvous validation catches it."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            t = ctx.virtual_tensor(64) if ctx.rank == 0 else ctx.zeros(64)
            comm.all_reduce("nccl", t)
            comm.finalize()

        with pytest.raises(ValidationError):
            Simulator(2).run(main)

    def test_all_virtual_is_fine(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.all_reduce("nccl", ctx.virtual_tensor(64))
            comm.finalize()
            return ctx.now

        assert all(t > 0 for t in Simulator(2).run(main).rank_results)


class TestNonContiguousTensors:
    def test_noncontiguous_input_handled(self):
        """The runtime makes tensors contiguous before communicating
        (the data lands in the contiguous copy — as with torch, callers
        who need the results in-place must pass contiguous tensors)."""
        import numpy as np
        from repro.tensor import from_numpy

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            base = np.zeros((4, 8), dtype=np.float32)
            strided = from_numpy(base[:, ::2], ctx.device)
            assert not strided.is_contiguous()
            comm.all_reduce("mvapich2-gdr", strided)  # must not crash
            comm.finalize()
            return True

        assert all(Simulator(2).run(main).rank_results)


class TestNonSimTensorRejection:
    def test_numpy_array_rejected(self):
        import numpy as np

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            comm.all_reduce("nccl", np.zeros(4))

        with pytest.raises(TypeError, match="SimTensor"):
            Simulator(1).run(main)
