"""Randomized SPMD programs through the full runtime (hypothesis).

A miniature model checker: generate a random sequence of collectives
(random ops, sizes, backends, roots, sync modes), run it on a simulated
job, and verify every rank's data against a plain-NumPy oracle computed
from the same sequence.  Any divergence in matching, ordering, data
movement, or synchronization shows up as a mismatch or a deadlock.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.ops import ReduceOp
from repro.core import MCRCommunicator
from repro.sim import Simulator

BACKENDS = ["nccl", "mvapich2-gdr"]

op_step = st.fixed_dictionaries(
    {
        "op": st.sampled_from(
            ["all_reduce", "bcast", "all_gather", "reduce_scatter", "all_to_all_single"]
        ),
        "backend": st.sampled_from(BACKENDS),
        "chunk": st.integers(1, 8),
        "root": st.integers(0, 3),
        "async_op": st.booleans(),
        "reduce_op": st.sampled_from([ReduceOp.SUM, ReduceOp.MAX]),
    }
)


def oracle(world, steps, state):
    """Plain-NumPy reference for the generated program."""
    for step in steps:
        op = step["op"]
        if op == "all_reduce":
            stacked = np.stack([state[r] for r in range(world)])
            out = (
                stacked.sum(axis=0)
                if step["reduce_op"] is ReduceOp.SUM
                else stacked.max(axis=0)
            )
            for r in range(world):
                state[r] = out.copy()
        elif op == "bcast":
            root = step["root"] % world
            for r in range(world):
                state[r] = state[root].copy()
        elif op == "all_gather":
            gathered = np.concatenate([state[r] for r in range(world)])
            for r in range(world):
                state[r] = gathered[: state[r].size].copy()  # keep size: take prefix
        elif op == "reduce_scatter":
            n = state[0].size
            full = np.concatenate([state[r] for r in range(world)])
            # emulate: inputs are each rank's buffer tiled to world*n? —
            # the runtime program uses input = tile(state, world); chunk
            # r of the elementwise sum lands on rank r, then we tile back
            stacked = np.stack([np.tile(state[r], world) for r in range(world)])
            summed = stacked.sum(axis=0)
            for r in range(world):
                state[r] = summed[r * n : (r + 1) * n].copy()
        elif op == "all_to_all_single":
            n = state[0].size
            chunk = n // world
            if chunk == 0:
                continue
            usable = chunk * world
            new = {}
            for j in range(world):
                parts = [
                    state[i][j * chunk : (j + 1) * chunk] for i in range(world)
                ]
                rest = state[j][usable:]
                new[j] = np.concatenate(parts + [rest])
            for r in range(world):
                state[r] = new[r]
    return state


@given(
    world=st.sampled_from([2, 3, 4]),
    steps=st.lists(op_step, min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_random_program_matches_numpy_oracle(world, steps, seed):
    rng = np.random.default_rng(seed)
    n = 8 * world  # divisible by every world size used
    init = {r: rng.integers(-4, 5, size=n).astype(np.float32) for r in range(world)}

    def main(ctx):
        comm = MCRCommunicator(ctx, BACKENDS)
        buf = ctx.tensor(init[ctx.rank].copy())
        for step in steps:
            op, backend = step["op"], step["backend"]
            kwargs = {"async_op": step["async_op"]}
            if op == "all_reduce":
                h = comm.all_reduce(backend, buf, op=step["reduce_op"], **kwargs)
            elif op == "bcast":
                h = comm.bcast(backend, buf, root=step["root"] % ctx.world_size, **kwargs)
            elif op == "all_gather":
                out = ctx.zeros(buf.numel() * ctx.world_size)
                h = comm.all_gather(backend, out, buf, **kwargs)
                if h is not None:
                    h.synchronize()
                    h = None
                else:
                    comm.synchronize()
                buf.data[:] = out.data[: buf.numel()]
            elif op == "reduce_scatter":
                big = ctx.tensor(np.tile(buf.data, ctx.world_size))
                out = ctx.zeros(buf.numel())
                h = comm.reduce_scatter(backend, out, big, **kwargs)
                if h is not None:
                    h.synchronize()
                    h = None
                else:
                    comm.synchronize()
                buf.data[:] = out.data
            elif op == "all_to_all_single":
                chunk = buf.numel() // ctx.world_size
                if chunk == 0:
                    continue
                usable = chunk * ctx.world_size
                inp = ctx.tensor(buf.data[:usable].copy())
                out = ctx.zeros(usable)
                h = comm.all_to_all_single(backend, out, inp, **kwargs)
                if h is not None:
                    h.synchronize()
                    h = None
                else:
                    comm.synchronize()
                buf.data[:usable] = out.data
            if h is not None:
                h.synchronize()
            else:
                comm.synchronize()
        comm.finalize()
        return buf.data.copy()

    measured = Simulator(world, seed=seed).run(main).rank_results
    expected = oracle(world, steps, {r: init[r].copy() for r in range(world)})
    for r in range(world):
        assert np.allclose(measured[r], expected[r], rtol=1e-4, atol=1e-3), (
            f"rank {r} diverged after {steps}"
        )


@given(
    world=st.sampled_from([2, 4]),
    steps=st.lists(op_step, min_size=1, max_size=5),
)
@settings(max_examples=15, deadline=None)
def test_random_program_times_deterministic(world, steps):
    """Same program twice -> bit-identical simulated time."""

    def main(ctx):
        comm = MCRCommunicator(ctx, BACKENDS)
        buf = ctx.zeros(8 * ctx.world_size)
        for step in steps:
            if step["op"] == "all_reduce":
                comm.all_reduce(step["backend"], buf, async_op=step["async_op"])
            else:
                comm.bcast(step["backend"], buf, root=step["root"] % ctx.world_size)
        comm.finalize()
        return ctx.now

    t1 = Simulator(world).run(main).rank_results
    t2 = Simulator(world).run(main).rank_results
    assert t1 == t2
