"""Fixed-rate lossy compression (paper §V-E): size contract, error
bounds, and integration into the communicator."""

import math

import numpy as np
import pytest

from repro.core import CompressionConfig, MCRCommunicator, MCRConfig
from repro.ext.compression import BLOCK_ELEMS, FixedRateCodec
from repro.sim import Simulator


class TestCodec:
    def test_compressed_size_contract(self):
        codec = FixedRateCodec(rate_bits=8)
        nbytes = 4096 * 4  # 4096 float32 elements
        out = codec.compressed_nbytes(nbytes)
        # 8 bits/elem payload + one fp32 scale per 256-elem block
        assert out == 4096 + (4096 // BLOCK_ELEMS) * 4

    def test_partial_trailing_byte_rounds_up(self):
        # 1 element at 2 bits is a quarter byte of payload -> still one
        # wire byte, plus one fp32 block scale
        assert FixedRateCodec(rate_bits=2).compressed_nbytes(4) == 1 + 4

    def test_compressed_size_exact_for_odd_sizes(self):
        # regression: payload bits were floor-divided into bytes, so any
        # element count with a partial trailing byte under-reported the
        # wire size (worst at rate_bits=2, where up to 6 bits dropped)
        for rate in range(2, 17):
            codec = FixedRateCodec(rate_bits=rate)
            for n_elems in (1, 3, 5, 7, 127, 255, 257, 999, 1001):
                n_blocks = -(-n_elems // BLOCK_ELEMS)
                expected = math.ceil(n_elems * rate / 8) + n_blocks * 4
                got = codec.compressed_nbytes(n_elems * 4)
                assert got == expected, (rate, n_elems, got, expected)

    def test_ratio_near_rate(self):
        codec = FixedRateCodec(rate_bits=8)
        assert 3.5 < codec.ratio(1 << 20) <= 4.0

    def test_rate_bits_validated(self):
        with pytest.raises(ValueError):
            FixedRateCodec(rate_bits=1)
        with pytest.raises(ValueError):
            FixedRateCodec(rate_bits=32)

    def test_roundtrip_error_bounded(self):
        codec = FixedRateCodec(rate_bits=8)
        rng = np.random.default_rng(0)
        data = rng.normal(size=4096).astype(np.float32)
        original = data.copy()
        codec.apply_quantization_error(data)
        # error bounded by block max * max_relative_error per block
        blocks = original.reshape(-1, BLOCK_ELEMS)
        err = np.abs(data.reshape(-1, BLOCK_ELEMS) - blocks)
        bound = np.abs(blocks).max(axis=1, keepdims=True) * codec.max_relative_error()
        assert np.all(err <= bound + 1e-7)

    def test_higher_rate_lower_error(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=1024).astype(np.float32)
        errs = {}
        for bits in (4, 8, 12):
            d = data.copy()
            FixedRateCodec(rate_bits=bits).apply_quantization_error(d)
            errs[bits] = np.abs(d - data).max()
        assert errs[12] < errs[8] < errs[4]

    def test_zero_block_stable(self):
        data = np.zeros(512, dtype=np.float32)
        FixedRateCodec().apply_quantization_error(data)
        assert np.all(data == 0)

    def test_integer_payloads_untouched(self):
        data = np.arange(64, dtype=np.int64)
        FixedRateCodec().apply_quantization_error(data)
        assert np.array_equal(data, np.arange(64))

    def test_partial_block(self):
        data = np.ones(100, dtype=np.float32)  # < one block
        FixedRateCodec().apply_quantization_error(data)
        assert np.allclose(data, 1.0, atol=0.01)

    def test_codec_time_scales_with_bytes(self):
        codec = FixedRateCodec()
        assert codec.codec_time_us(1 << 20) > codec.codec_time_us(1 << 10) > 0


class TestCommIntegration:
    def config(self):
        return MCRConfig(
            compression=CompressionConfig(enabled=True, rate_bits=8)
        )

    def test_compressed_allreduce_approximately_correct(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], config=self.config())
            x = ctx.full(1024, float(ctx.rank + 1))
            comm.all_reduce("nccl", x)
            comm.synchronize()
            comm.finalize()
            return x.data.copy()

        for data in Simulator(2, seed=3).run(main).rank_results:
            assert np.allclose(data, 3.0, rtol=0.02)

    def test_compression_shrinks_comm_time(self):
        def main(ctx, config):
            comm = MCRCommunicator(ctx, ["nccl"], config=config)
            x = ctx.virtual_tensor(16 << 20)
            h = comm.all_reduce("nccl", x, async_op=True)
            h.synchronize()
            comm.finalize()
            return ctx.now

        plain = max(Simulator(4).run(main, MCRConfig()).rank_results)
        compressed = max(
            Simulator(4).run(main, self.config()).rank_results
        )
        assert compressed < plain * 0.5  # ~4x less wire traffic

    def test_ineligible_families_not_compressed(self):
        """Alltoall shuffles indices/embeddings: exact by default."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], config=self.config())
            x = ctx.tensor([float(ctx.rank * ctx.world_size + j) for j in range(ctx.world_size)])
            out = ctx.zeros(ctx.world_size)
            comm.all_to_all_single("nccl", out, x)
            comm.synchronize()
            comm.finalize()
            return out.data.copy()

        results = Simulator(2).run(main).rank_results
        assert np.array_equal(results[0], [0, 2])  # bit exact
