"""Configuration validation, framework profiles, handle edge cases."""

import pytest

from repro.core import CompressionConfig, MCRCommunicator, MCRConfig
from repro.core.handles import CompletedHandle
from repro.models import PROFILES
from repro.sim import Simulator


class TestMCRConfigValidation:
    def test_defaults_valid(self):
        MCRConfig().validate()

    def test_bad_stream_mode(self):
        with pytest.raises(ValueError, match="mpi_stream_mode"):
            MCRConfig(mpi_stream_mode="auto").validate()

    def test_bad_synchronization(self):
        with pytest.raises(ValueError, match="synchronization"):
            MCRConfig(synchronization="eager").validate()

    def test_bad_pool_size(self):
        with pytest.raises(ValueError, match="streams_per_backend"):
            MCRConfig(streams_per_backend=0).validate()

    def test_bad_dispatch_fraction(self):
        with pytest.raises(ValueError, match="dispatch_fraction"):
            MCRConfig(dispatch_fraction=1.5).validate()

    def test_compression_defaults_off(self):
        assert not MCRConfig().compression.enabled

    def test_compression_families(self):
        cfg = CompressionConfig(enabled=True)
        assert "allreduce" in cfg.families
        assert "alltoall" not in cfg.families  # indices must stay exact

    def test_invalid_config_rejected_at_communicator(self):
        def main(ctx):
            MCRCommunicator(ctx, ["nccl"], config=MCRConfig(streams_per_backend=-1))

        with pytest.raises(ValueError):
            Simulator(1).run(main)


class TestFrameworkProfiles:
    def test_all_fig11_profiles_present(self):
        assert set(PROFILES) == {"mcr-dl", "torch-distributed", "horovod", "mpi4py"}

    def test_profiles_to_config(self):
        config = PROFILES["mpi4py"].to_config()
        assert config.force_host_staging
        assert config.dispatch_overhead_us == 5.0
        config.validate()

    def test_mcr_profile_is_the_cheapest_dispatch(self):
        mcr = PROFILES["mcr-dl"]
        for key, profile in PROFILES.items():
            if key == "mcr-dl":
                continue
            assert profile.dispatch_overhead_us > mcr.dispatch_overhead_us, key
            assert profile.dispatch_fraction > mcr.dispatch_fraction, key

    def test_only_mcr_mixes(self):
        assert PROFILES["mcr-dl"].supports_mixing
        assert not any(
            PROFILES[k].supports_mixing for k in ("torch-distributed", "horovod", "mpi4py")
        )

    def test_only_mpi4py_stages(self):
        assert PROFILES["mpi4py"].host_staging
        assert not PROFILES["horovod"].host_staging


class TestCompletedHandle:
    def test_trivially_complete(self):
        def main(ctx):
            h = CompletedHandle(ctx, "nccl", "noop")
            h.wait()
            h.synchronize()
            return h.is_completed(), h.completion_time

        done, t = Simulator(1).run(main).rank_results[0]
        assert done
        assert t == 0.0

    def test_world_size_one_returns_completed_handles(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            h = comm.all_reduce("nccl", ctx.zeros(4), async_op=True)
            done = h.is_completed()
            comm.finalize()
            return done

        assert Simulator(1).run(main).rank_results == [True]


class TestStreamPoolPolicy:
    def test_least_busy_backend_prefers_idle(self):
        from repro.core.sync import SyncManager

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            # load NCCL's stream 0
            comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
            choice = comm.sync.least_busy_backend(["nccl", "msccl"])
            comm.finalize()
            return choice

        assert Simulator(2).run(main).rank_results[0] == "msccl"

    def test_least_busy_counts_poolless_outstanding(self):
        """Host-synchronized backends without a stream pool must report
        their pending requests as load, not a constant 0.0 (which made
        them soak up every timeout flush)."""

        def main(ctx):
            config = MCRConfig(mpi_stream_mode="mpi-managed")
            comm = MCRCommunicator(ctx, ["mvapich2-gdr", "nccl"], config=config)
            h = comm.all_reduce(
                "mvapich2-gdr", ctx.virtual_tensor(8 << 20), async_op=True
            )
            choice = comm.sync.least_busy_backend(
                ["mvapich2-gdr", "nccl"], comm._outstanding
            )
            h.wait()
            comm.finalize()
            return choice

        assert Simulator(2).run(main).rank_results == ["nccl", "nccl"]

    def test_naive_mode_has_no_pools_in_use(self):
        def main(ctx):
            config = MCRConfig(synchronization="naive")
            comm = MCRCommunicator(ctx, ["nccl"], config=config)
            comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20))
            comm.finalize()

        res = Simulator(2, trace=True).run(main)
        comm_recs = res.tracer.filter(rank=0, category="comm")
        assert {r.stream for r in comm_recs} == {"default"}
