"""Online adaptive dispatch: drift detection, retuning, and probation.

Every test here runs real SPMD jobs through the Simulator: the adaptive
retuner's core obligation is that per-rank state evolves identically on
all ranks (dispatch keys must keep matching), so the tests assert
cross-rank equality of the snapshot/table/quarantine state — and the
fact that a run *finishes* is itself the no-deadlock assertion.
"""

import pytest

from repro.cluster import lassen
from repro.core import MCRCommunicator, MCRConfig, TuningTable
from repro.core.config import AdaptiveConfig
from repro.sim import Simulator
from repro.sim.faults import FaultSpec

NBYTES = 1 << 20


def adaptive_config(**overrides) -> AdaptiveConfig:
    base = dict(enabled=True, min_samples=5, explore_ops=3, drift_ratio=1.5)
    base.update(overrides)
    return AdaptiveConfig(**base)


def degraded_table(world_size: int) -> TuningTable:
    t = TuningTable(system="lassen")
    t.add("allreduce", world_size, NBYTES, "nccl")
    return t


def run_loop(
    world_size: int,
    ops: int,
    adaptive=None,
    faults=None,
    tail_ops: int = 0,
    epsilon_free: bool = True,
):
    """Blocking all-reduce loop; returns per-rank (tail_us, snapshot,
    table entries, quarantined, plan invalidations)."""
    table = degraded_table(world_size)

    def rank_main(ctx):
        config = MCRConfig()
        if adaptive is not None:
            config.adaptive = adaptive
        comm = MCRCommunicator(
            ctx,
            ["nccl", "mvapich2-gdr"],
            config=config,
            tuning_table=table,
            comm_id="adapt-test",
        )
        x = ctx.virtual_tensor(NBYTES // 4)
        t_tail = 0.0
        for i in range(ops):
            if tail_ops and i == ops - tail_ops:
                t_tail = ctx.now
            # block per op so the host clock tracks completions: a
            # free-running post loop would outrun mid-run fault windows
            comm.all_reduce("auto", x, async_op=True).synchronize()
        tail = ctx.now - (t_tail if tail_ops else 0.0)
        retuner = comm.retuner
        snap = retuner.snapshot() if retuner is not None else None
        entries = (
            {
                op: {ws: dict(b) for ws, b in scales.items()}
                for op, scales in retuner.table.entries.items()
            }
            if retuner is not None
            else None
        )
        out = (
            tail,
            snap,
            entries,
            sorted(comm._quarantined),
            comm.plan_stats["invalidations"],
        )
        comm.finalize()
        return out

    sim = Simulator(world_size, system=lassen(), faults=faults)
    return sim.run(rank_main).rank_results, table


class TestAdaptiveConfig:
    def test_defaults_off(self):
        assert not MCRConfig().adaptive.enabled

    @pytest.mark.parametrize(
        "bad",
        [
            dict(ema_alpha=0.0),
            dict(ema_alpha=1.5),
            dict(drift_ratio=1.0),
            dict(min_samples=0),
            dict(explore_ops=0),
            dict(epsilon=1.0),
            dict(epsilon=-0.1),
            dict(max_candidates=0),
            dict(cooldown_ops=-1),
            dict(probation_interval=-1),
            dict(canary_bytes=0),
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            AdaptiveConfig(enabled=True, **bad).validate()

    def test_disabled_means_no_retuner(self):
        results, _ = run_loop(4, 3)
        for _, snap, entries, _, _ in results:
            assert snap is None and entries is None


class TestDriftRetune:
    """A mid-run degraded link must flip the cell off its tuned pick."""

    def run_degraded(self):
        faults = FaultSpec.parse("link=20000:inf:4.0:backend=nccl")
        return run_loop(
            16, 150, adaptive=adaptive_config(), faults=faults, tail_ops=40
        )

    def test_recovers_over_static_table(self):
        faults = FaultSpec.parse("link=20000:inf:4.0:backend=nccl")
        static, _ = run_loop(16, 150, faults=faults, tail_ops=40)
        adaptive, _ = self.run_degraded()
        static_tail = max(r[0] for r in static)
        adaptive_tail = max(r[0] for r in adaptive)
        assert static_tail / adaptive_tail >= 1.2

    def test_full_lifecycle_and_symmetry(self):
        results, shared_table = self.run_degraded()
        tails, snaps, entries, quarantined, _ = zip(*results)
        # identical decisions on every rank
        assert len(set(map(str, snaps))) == 1
        assert len(set(map(str, entries))) == 1
        snap = snaps[0]
        assert snap["stats"]["drift"] >= 1
        assert snap["stats"]["explore"] >= 1
        assert snap["stats"]["retune"] >= 1
        cell = snap["cells"]["allreduce/%d" % NBYTES]
        assert cell["current"] != "nccl"
        # the committed winner landed in the per-rank table...
        assert entries[0]["allreduce"][16][NBYTES] == cell["current"]
        # ...while the shared plan table is untouched (per-rank clone)
        assert shared_table.lookup("allreduce", 16, NBYTES) == "nccl"
        assert quarantined[0] == []

    def test_healthy_run_is_inert_and_time_identical(self):
        plain, _ = run_loop(16, 60)
        adapt, _ = run_loop(16, 60, adaptive=adaptive_config())
        assert [r[0] for r in plain] == [r[0] for r in adapt]
        snap = adapt[0][1]
        assert snap["stats"] == {
            "drift": 0, "explore": 0, "retune": 0, "probation": 0
        }
        cell = snap["cells"]["allreduce/%d" % NBYTES]
        assert cell["current"] == "nccl"
        assert adapt[0][2]["allreduce"][16][NBYTES] == "nccl"


class TestEpsilonTrials:
    def test_trials_sample_alternates_without_retuning(self):
        adaptive = adaptive_config(epsilon=0.2, drift_ratio=10.0)
        results, _ = run_loop(16, 60, adaptive=adaptive)
        _, snaps, entries, _, _ = zip(*results)
        assert len(set(map(str, snaps))) == 1
        cell = snaps[0]["cells"]["allreduce/%d" % NBYTES]
        # alternates got sampled...
        assert cell["count"].get("mvapich2-gdr", 0) >= 1
        # ...but the cell and table still serve the tuned pick
        assert cell["current"] == "nccl"
        assert entries[0]["allreduce"][16][NBYTES] == "nccl"


class TestProbation:
    """quarantine -> probe -> probe -> recovery, symmetric on all ranks."""

    def run_outage(self, probation_interval=4, ops=25):
        # nccl fails hard at its 3rd collective and recovers at its 6th
        # (probes increment the same per-backend fault counter, so two
        # probes fail before the third sees the healthy index)
        faults = FaultSpec.parse("backend=nccl:permanent:at=3:until=6")
        adaptive = adaptive_config(
            probation_interval=probation_interval, drift_ratio=10.0
        )
        return run_loop(4, ops, adaptive=adaptive, faults=faults)

    def test_unquarantines_symmetrically(self):
        results, _ = self.run_outage()
        _, snaps, entries, quarantined, invalidations = zip(*results)
        assert len(set(map(str, snaps))) == 1
        assert len(set(map(str, quarantined))) == 1
        # the backend is live again on every rank
        assert quarantined[0] == []
        assert snaps[0]["stats"]["probation"] >= 2  # failed probes + recovery
        # quarantine + unquarantine each recompiled the dispatch plans
        assert invalidations[0] >= 2

    def test_probation_disabled_stays_quarantined(self):
        faults = FaultSpec.parse("backend=nccl:permanent:at=3:until=6")
        adaptive = adaptive_config(probation_interval=0, drift_ratio=10.0)
        results, _ = run_loop(4, 25, adaptive=adaptive, faults=faults)
        _, snaps, _, quarantined, _ = zip(*results)
        assert quarantined[0] == ["nccl"]
        assert snaps[0]["stats"]["probation"] == 0


class TestUnquarantineCascade:
    """Parent recovery lifts inherited child quarantines — and only those."""

    def test_hier_children_follow_parent(self):
        def rank_main(ctx):
            comm = MCRCommunicator(
                ctx, ["nccl", "mvapich2-gdr"], comm_id="cascade-test"
            )
            x = ctx.virtual_tensor(1024)
            # build the phase children
            comm.all_reduce("hier:nccl+mvapich2-gdr", x)
            comm.synchronize()
            children = comm._hier_children
            assert children
            comm._quarantine(comm.backends["nccl"], "test outage")
            inherited = [
                "nccl" in c._quarantined
                for c in children
                if "nccl" in c.backends
            ]
            assert inherited and all(inherited)
            comm._unquarantine(comm.backends["nccl"], "probe cleared")
            recovered = [
                "nccl" not in c._quarantined
                for c in children
                if "nccl" in c.backends
            ]
            assert recovered and all(recovered)
            assert not comm.backends["nccl"].failed
            comm.finalize()
            return True

        assert all(Simulator(16, system=lassen()).run(rank_main).rank_results)

    def test_child_local_quarantine_stays_put(self):
        def rank_main(ctx):
            comm = MCRCommunicator(
                ctx, ["nccl", "mvapich2-gdr"], comm_id="cascade-local"
            )
            x = ctx.virtual_tensor(1024)
            comm.all_reduce("hier:nccl+mvapich2-gdr", x)
            comm.synchronize()
            child = next(
                c for c in comm._hier_children if "nccl" in c.backends
            )
            # a fault observed only inside one phase group
            child._quarantine(child.backends["nccl"], "child-local fault")
            comm._quarantine(comm.backends["nccl"], "parent outage")
            comm._unquarantine(comm.backends["nccl"], "probe cleared")
            # the child's own quarantine is not the parent's to lift
            assert "nccl" in child._quarantined
            comm.finalize()
            return True

        assert all(Simulator(16, system=lassen()).run(rank_main).rank_results)
