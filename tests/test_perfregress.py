"""The perf-regression harness itself: scenario contracts, merge/compare
logic, and the CLI round-trip.

The heavy scenarios run in ``scripts/perfgate.py`` and ``python -m
repro perf``, not here — this file only runs the cheapest real scenario
once (smoke) and exercises the reporting machinery on synthetic data.
"""

import json

import pytest

from repro.bench import perfregress


def test_scenario_registry_complete():
    assert set(perfregress.SCENARIOS) == {
        "engine_events",
        "allreduce_ws16",
        "allreduce_ws64",
        "allreduce_ws128",
        "tuner_sweep",
        "dsmoe_step",
        "obs_overhead",
        "tune_sweep",
        "dispatch_cache",
        "hier_allreduce",
        "adaptive_degraded_link",
    }


def test_cheap_scenarios_smoke_and_deterministic():
    # two repeats: run_scenarios itself asserts the sim_* fingerprints
    # match across repeats
    out = perfregress.run_scenarios(["tuner_sweep", "allreduce_ws16"], repeats=2)
    assert out["tuner_sweep"]["wall_s"] > 0
    assert out["tuner_sweep"]["cells"] > 0
    assert len(out["allreduce_ws16"]["wall_runs_s"]) == 2
    assert out["allreduce_ws16"]["sim_final_us"] > 0


def test_run_scenarios_rejects_unknown_and_bad_repeats():
    with pytest.raises(KeyError, match="unknown scenario"):
        perfregress.run_scenarios(["nope"], repeats=1)
    with pytest.raises(ValueError, match="repeats"):
        perfregress.run_scenarios(["tuner_sweep"], repeats=0)


def test_fingerprint_selects_sim_keys():
    m = {"wall_s": 1.0, "sim_final_us": 42.0, "ops": 3, "sim_table_picks": {"a": "b"}}
    assert perfregress.fingerprint(m) == {
        "sim_final_us": 42.0,
        "sim_table_picks": {"a": "b"},
    }


def test_compare_reports_speedup_and_fingerprint_verdict():
    before = {
        "s1": {"wall_s": 2.0, "sim_final_us": 10.0},
        "s2": {"wall_s": 1.0, "sim_final_us": 5.0},
        "only_before": {"wall_s": 1.0},
    }
    after = {
        "s1": {"wall_s": 1.0, "sim_final_us": 10.0},
        "s2": {"wall_s": 0.5, "sim_final_us": 6.0},  # fingerprint drift!
    }
    cmp = perfregress.compare(before, after)
    assert cmp["s1"] == {"speedup": 2.0, "sim_identical": True}
    assert cmp["s2"]["speedup"] == 2.0
    assert cmp["s2"]["sim_identical"] is False
    assert "only_before" not in cmp


def test_merge_results_roundtrip_and_speedup_section(tmp_path):
    path = tmp_path / "bench.json"
    perfregress.merge_results(
        str(path), "before", {"s1": {"wall_s": 2.0, "sim_final_us": 1.5}}
    )
    data = perfregress.merge_results(
        str(path), "after", {"s1": {"wall_s": 1.0, "sim_final_us": 1.5}}
    )
    assert data["speedup"]["s1"] == {"speedup": 2.0, "sim_identical": True}
    on_disk = json.loads(path.read_text())
    assert on_disk == data
    # subset runs merge into the label instead of replacing it
    data = perfregress.merge_results(
        str(path), "after", {"s2": {"wall_s": 3.0}}
    )
    assert set(data["after"]["scenarios"]) == {"s1", "s2"}
    # comparison table renders both scenarios present on the before side
    table = perfregress.render_comparison(data)
    assert "s1" in table and "identical" in table


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": 999}')
    with pytest.raises(ValueError, match="unsupported schema"):
        perfregress.load(str(path))


def test_cli_perf_writes_output(tmp_path):
    from repro.cli import main

    out = tmp_path / "bench.json"
    rc = main(
        [
            "perf",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--scenarios",
            "tuner_sweep",
        ]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["schema"] == perfregress.SCHEMA_VERSION
    assert "tuner_sweep" in data["after"]["scenarios"]


def test_committed_baseline_demonstrates_speedup_with_identical_sims():
    """The committed BENCH_simulator.json is the PR's evidence artifact:
    it must contain both sides, show no simulated-timing drift, and a
    net wall-clock win."""
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "BENCH_simulator.json"
    if not path.exists():
        pytest.skip("BENCH_simulator.json not present in this checkout")
    data = json.loads(path.read_text())
    assert {"before", "after", "speedup"} <= set(data)
    for name, cmp in data["speedup"].items():
        assert cmp["sim_identical"], f"{name}: simulated timings drifted"
    speedups = [c["speedup"] for c in data["speedup"].values()]
    assert all(s > 1.0 for s in speedups)
