#!/usr/bin/env python
"""Static layering lint for the comm core (docs/INTERNALS.md §15).

``core/comm.py`` is layered — op surface over dispatch over execution,
with a narrow :class:`~repro.core.protocols.CommCore` protocol for
everything outside the core — and this script keeps the layering real
by failing CI when an import edge violates it.  Checks, in order:

1. **No runtime import cycles** anywhere under ``src/repro`` —
   module-level imports only (``if TYPE_CHECKING`` blocks and
   function-local imports do not execute at import time and are
   exempt).
2. **Core layering is one-directional**: the op surface
   (``core/comm``) may import dispatch/op-table/execution; dispatch
   (``core/dispatch``) and the op table (``core/op_table``) may import
   execution (``core/rendezvous``) but never the op surface; execution
   imports none of the layers above it; the protocol
   (``core/protocols``) imports none of them at all.
3. **Extensions program to the protocol**: nothing under ``ext/`` or
   ``frameworks/`` may import ``repro.core.comm`` or name
   ``MCRCommunicator`` in *any* scope — they hold a ``CommCore``.
4. **No deferred concrete imports outside the core**: outside
   ``repro/core/`` there are no function-local or
   ``TYPE_CHECKING``-guarded imports of ``repro.core.comm`` /
   ``MCRCommunicator`` — the historical cycle-papering idiom this
   refactor deleted.  (Module-level imports outside ``ext/`` and
   ``frameworks/`` — e.g. the bench harness constructing concrete
   communicators — stay legal.)

Usage::

    python scripts/check_imports.py [--src src]

Exit status 0 = clean, 1 = violations (one per line on stderr).

The checker is importable (``check(src_root) -> list[str]``) so the
self-test in ``tests/test_layering.py`` can point it at a copied tree
with an injected cycle and assert the lint actually fires.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

CONCRETE_MODULE = "repro.core.comm"
CONCRETE_NAME = "MCRCommunicator"

#: module -> layers it must NOT import (rule 2).  ``core/comm`` sits on
#: top and may import everything below it, so it has no entry.
LAYER_FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro.core.dispatch": ("repro.core.comm", "repro.core.op_table"),
    "repro.core.op_table": ("repro.core.comm", "repro.core.dispatch"),
    "repro.core.rendezvous": (
        "repro.core.comm",
        "repro.core.dispatch",
        "repro.core.op_table",
    ),
    "repro.core.protocols": (
        "repro.core.comm",
        "repro.core.dispatch",
        "repro.core.op_table",
        "repro.core.rendezvous",
    ),
}

#: package prefixes that must hold a CommCore, never the concrete class
PROTOCOL_ONLY_PREFIXES = ("repro.ext.", "repro.frameworks.")


def _module_name(py: Path, src_root: Path) -> str:
    rel = py.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


class _ImportScan(ast.NodeVisitor):
    """Collect imports split by scope: module-level runtime imports
    (they execute at import time and define the dependency graph) vs
    deferred ones (function-local or TYPE_CHECKING-guarded)."""

    def __init__(self, module: str, known: set[str]):
        self.module = module
        self.known = known
        #: (target_module, lineno) executed at import time
        self.runtime: list[tuple[str, int]] = []
        #: (target_module, lineno, kind) deferred to call/type-check time
        self.deferred: list[tuple[str, int, str]] = []
        self._depth = 0  # function nesting
        self._guard = 0  # TYPE_CHECKING nesting

    # -- scope tracking ----------------------------------------------------

    def _visit_scoped(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_Lambda = _visit_scoped

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_guard(node):
            self._guard += 1
            for child in node.body:
                self.visit(child)
            self._guard -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- imports -----------------------------------------------------------

    def _record(self, target: str, lineno: int) -> None:
        if self._guard:
            self.deferred.append((target, lineno, "TYPE_CHECKING"))
        elif self._depth:
            self.deferred.append((target, lineno, "function-local"))
        else:
            self.runtime.append((target, lineno))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:  # resolve "from . import x" relative to this module
            parts = self.module.split(".")
            # drop one part per dot beyond the first for non-packages;
            # module names here never include __init__, so level=1 in a
            # plain module means "the containing package"
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        for alias in node.names:
            # "from repro.a import b" imports module repro.a.b when b is
            # itself a module, else the attribute b of module repro.a
            candidate = f"{base}.{alias.name}" if base else alias.name
            self._record(candidate if candidate in self.known else base, node.lineno)


def _scan_tree(src_root: Path) -> dict[str, _ImportScan]:
    files = {p for p in src_root.rglob("*.py")}
    known = {_module_name(p, src_root) for p in files}
    scans: dict[str, _ImportScan] = {}
    for py in sorted(files):
        module = _module_name(py, src_root)
        tree = ast.parse(py.read_text(), filename=str(py))
        scan = _ImportScan(module, known)
        scan.visit(tree)
        scans[module] = scan
    return scans


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs (iterative); every SCC of size > 1, plus self-loops,
    is a runtime import cycle."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in graph:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1 or node in graph.get(node, set()):
                    cycles.append(sorted(scc))
    return cycles


def check(src_root: "Path | str") -> list[str]:
    """Run all checks against a source tree; return violation strings
    (empty = clean)."""
    src_root = Path(src_root)
    scans = _scan_tree(src_root)
    violations: list[str] = []

    # 1. runtime import cycles
    graph = {
        module: {target for target, _ in scan.runtime if target in scans}
        for module, scan in scans.items()
    }
    for cycle in _find_cycles(graph):
        violations.append("import cycle: " + " <-> ".join(cycle))

    for module, scan in sorted(scans.items()):
        # 2. core layering (runtime and deferred alike: a TYPE_CHECKING
        # edge from a lower layer upward is the cycle-papering idiom
        # this lint exists to keep out of the core)
        forbidden = LAYER_FORBIDDEN.get(module, ())
        for target, lineno in scan.runtime:
            if target in forbidden:
                violations.append(
                    f"{module}:{lineno}: layer violation: imports {target}"
                )
        for target, lineno, kind in scan.deferred:
            if target in forbidden:
                violations.append(
                    f"{module}:{lineno}: layer violation: {kind} import of {target}"
                )

        outside_core = not module.startswith("repro.core")
        protocol_only = module.startswith(PROTOCOL_ONLY_PREFIXES)
        for target, lineno in scan.runtime:
            if protocol_only and target == CONCRETE_MODULE:
                violations.append(
                    f"{module}:{lineno}: imports {CONCRETE_MODULE} — "
                    f"hold a repro.core.protocols.CommCore instead"
                )
        for target, lineno, kind in scan.deferred:
            if target == CONCRETE_MODULE and (protocol_only or outside_core):
                violations.append(
                    f"{module}:{lineno}: {kind} import of {CONCRETE_MODULE} — "
                    f"use repro.core.protocols.CommCore (top-level) instead"
                )

        # 3b. naming the concrete class at all, in any scope
        if protocol_only:
            py = src_root / (module.replace(".", "/") + ".py")
            if not py.exists():
                py = src_root / module.replace(".", "/") / "__init__.py"
            for node in ast.walk(ast.parse(py.read_text(), filename=str(py))):
                if isinstance(node, ast.Name) and node.id == CONCRETE_NAME:
                    violations.append(
                        f"{module}:{node.lineno}: references {CONCRETE_NAME} — "
                        f"extensions program to the CommCore protocol"
                    )
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name == CONCRETE_NAME:
                            violations.append(
                                f"{module}:{node.lineno}: imports {CONCRETE_NAME} — "
                                f"extensions program to the CommCore protocol"
                            )

    return violations


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--src",
        default=str(Path(__file__).resolve().parent.parent / "src"),
        help="source root containing the repro package (default: repo src/)",
    )
    args = parser.parse_args(argv)
    src_root = Path(args.src)
    if not (src_root / "repro").is_dir():
        print(f"check_imports: no repro package under {src_root}", file=sys.stderr)
        return 2
    violations = check(src_root)
    if violations:
        for violation in violations:
            print(f"check_imports: {violation}", file=sys.stderr)
        print(f"check_imports: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"check_imports: {len(list((src_root / 'repro').rglob('*.py')))} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
