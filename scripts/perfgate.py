#!/usr/bin/env python
"""Perf gate: fail when the simulator regresses against the committed
baseline.

Runs the canonical :mod:`repro.bench.perfregress` scenarios fresh and
compares them against the ``after`` side of the committed
``BENCH_simulator.json``:

* **wall-clock**: any scenario more than ``--tolerance`` (default 20%)
  slower than its baseline fails the gate.  Scenarios faster than the
  baseline are reported (consider refreshing the baseline).
* **simulated fingerprints** (``sim_*`` metrics): any difference fails
  unconditionally — wall-clock noise is expected, timing-semantics
  drift never is.

Usage::

    PYTHONPATH=src python scripts/perfgate.py [--baseline BENCH_simulator.json]
        [--tolerance 0.20] [--repeats 3] [--min-wall-s 0.02]

Exit status 0 = pass, 1 = regression, 2 = unusable baseline.

Tiny scenarios (baseline wall below ``--min-wall-s``) are exempt from
the wall-clock check — at millisecond scale the 20% band is dominated
by scheduler noise — but still fingerprint-checked.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import perfregress  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-wall-s", type=float, default=0.02)
    args = parser.parse_args(argv)

    data = perfregress.load(args.baseline)
    baseline = data.get("after", {}).get("scenarios")
    if not baseline:
        print(f"perfgate: no 'after' baseline in {args.baseline}", file=sys.stderr)
        return 2

    fresh = perfregress.run_scenarios(
        sorted(set(baseline) & set(perfregress.SCENARIOS)),
        repeats=args.repeats,
        progress=print,
    )

    failures = []
    print(f"\n{'scenario':<18} {'baseline':>10} {'now':>10} {'ratio':>7}  verdict")
    print("-" * 60)
    for name in sorted(fresh):
        base, cur = baseline[name], fresh[name]
        ratio = cur["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else float("inf")
        verdict = "ok"
        if perfregress.fingerprint(base) != perfregress.fingerprint(cur):
            verdict = "SIM-DIFFERS"
            failures.append(f"{name}: simulated fingerprint changed")
        elif base["wall_s"] < args.min_wall_s:
            verdict = "ok (tiny, wall exempt)"
        elif ratio > 1.0 + args.tolerance:
            verdict = f"REGRESSED >{args.tolerance:.0%}"
            failures.append(f"{name}: {ratio:.2f}x baseline wall-clock")
        elif ratio < 1.0 - args.tolerance:
            verdict = "faster (refresh baseline?)"
        print(
            f"{name:<18} {base['wall_s']*1e3:9.1f}ms {cur['wall_s']*1e3:9.1f}ms "
            f"{ratio:6.2f}x  {verdict}"
        )

    if failures:
        print("\nperfgate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperfgate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
