#!/usr/bin/env python
"""Perf gate: fail when the simulator regresses against the committed
baseline.

Runs the canonical :mod:`repro.bench.perfregress` scenarios fresh and
compares them against the ``after`` side of the committed
``BENCH_simulator.json``:

* **wall-clock**: any scenario more than ``--tolerance`` (default 20%)
  slower than its baseline fails the gate.  Scenarios faster than the
  baseline are reported (consider refreshing the baseline).
* **simulated fingerprints** (``sim_*`` metrics): any difference fails
  unconditionally — wall-clock noise is expected, timing-semantics
  drift never is.
* **observability budget**: the ``obs_overhead`` scenario reports the
  simulated step-time delta between an uninstrumented and a fully
  instrumented (trace + metrics) run; more than ``--obs-budget-pct``
  (default 5%, the paper's C3 overhead budget) fails the gate.  It is
  run even when absent from the baseline so older baselines still gate
  the budget.
* **dispatch plan cache**: the ``dispatch_cache`` scenario runs a
  steady-state loop with the plan cache on and force-disabled.  The two
  runs must agree on simulated time, and the steady-state plan hit rate
  must meet ``--plan-hit-floor`` (default 0.95).  Like ``obs_overhead``,
  it runs even when absent from the baseline.
* **hierarchical composite**: the ``hier_allreduce`` scenario times a
  4 MiB all-reduce on each constituent backend and on the
  ``hier:nccl+mvapich2-gdr`` composite; the composite must beat the
  best flat backend by ``--hier-speedup-floor`` (default 1.05x) and the
  tuned large-message pick must be a ``hier:*`` entry.  Like
  ``obs_overhead``, it runs even when absent from the baseline.
* **adaptive retuning**: the ``adaptive_degraded_link`` scenario runs a
  steady all-reduce loop whose tuned backend hits a mid-run 4x link
  slowdown, once with the static table and once with online adaptation
  on.  The adaptive run's tail must recover at least ``--adapt-floor``
  (default 1.2x) over the static one and must have committed at least
  one retune.  Like ``obs_overhead``, it runs even when absent from the
  baseline.
* **sweep engine**: the ``tune_sweep`` scenario runs the same
  simulated-mode tuning sweep serial, parallel (4 workers), and warm
  from the on-disk sweep cache.  The warm run must recompute **zero**
  cells and finish under ``--sweep-warm-pct`` (default 25%) of the
  serial wall; on hosts with >= 2 CPUs the parallel run must beat
  serial by at least ``--sweep-floor`` (default 1.3x — the engine
  targets >= 2x on 4 idle cores, the floor leaves CI headroom).  All
  three sweeps must agree byte-for-byte; that identity is part of the
  scenario's simulated fingerprint.  Like ``obs_overhead``, it runs
  even when absent from the baseline.

Usage::

    PYTHONPATH=src python scripts/perfgate.py [--baseline BENCH_simulator.json]
        [--tolerance 0.20] [--repeats 3] [--min-wall-s 0.02]
        [--sweep-floor 1.3] [--sweep-warm-pct 25]

Exit status 0 = pass, 1 = regression, 2 = unusable baseline.

Tiny scenarios (baseline wall below ``--min-wall-s``) are exempt from
the wall-clock check — at millisecond scale the 20% band is dominated
by scheduler noise — but still fingerprint-checked.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import perfregress  # noqa: E402

#: scenario whose fingerprint carries the instrumented-path overhead
OBS_SCENARIO = "obs_overhead"

#: scenario carrying the sweep engine's parallel / warm-cache contract
TUNE_SCENARIO = "tune_sweep"

#: scenario carrying the dispatch plan cache's steady-state contract
PLAN_SCENARIO = "dispatch_cache"

#: scenario carrying the hierarchical-composite crossover contract
HIER_SCENARIO = "hier_allreduce"

#: scenario carrying the adaptive-retuning recovery contract
ADAPT_SCENARIO = "adaptive_degraded_link"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-wall-s", type=float, default=0.02)
    parser.add_argument("--obs-budget-pct", type=float, default=5.0)
    parser.add_argument("--sweep-floor", type=float, default=1.3)
    parser.add_argument("--sweep-warm-pct", type=float, default=25.0)
    parser.add_argument("--plan-hit-floor", type=float, default=0.95)
    parser.add_argument("--hier-speedup-floor", type=float, default=1.05)
    parser.add_argument("--adapt-floor", type=float, default=1.2)
    args = parser.parse_args(argv)

    data = perfregress.load(args.baseline)
    baseline = data.get("after", {}).get("scenarios")
    if not baseline:
        print(f"perfgate: no 'after' baseline in {args.baseline}", file=sys.stderr)
        return 2

    chosen = set(baseline) & set(perfregress.SCENARIOS)
    if OBS_SCENARIO in perfregress.SCENARIOS:
        chosen.add(OBS_SCENARIO)  # budget-gated even without a baseline
    if TUNE_SCENARIO in perfregress.SCENARIOS:
        chosen.add(TUNE_SCENARIO)  # sweep-gated even without a baseline
    if PLAN_SCENARIO in perfregress.SCENARIOS:
        chosen.add(PLAN_SCENARIO)  # plan-gated even without a baseline
    if HIER_SCENARIO in perfregress.SCENARIOS:
        chosen.add(HIER_SCENARIO)  # crossover-gated even without a baseline
    if ADAPT_SCENARIO in perfregress.SCENARIOS:
        chosen.add(ADAPT_SCENARIO)  # recovery-gated even without a baseline
    fresh = perfregress.run_scenarios(sorted(chosen), repeats=args.repeats, progress=print)

    failures = []
    print(f"\n{'scenario':<18} {'baseline':>10} {'now':>10} {'ratio':>7}  verdict")
    print("-" * 60)
    for name in sorted(fresh):
        cur = fresh[name]
        base = baseline.get(name)
        if base is None:
            print(
                f"{name:<18} {'-':>10} {cur['wall_s']*1e3:9.1f}ms {'-':>7}  "
                "ok (not in baseline)"
            )
            continue
        ratio = cur["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else float("inf")
        verdict = "ok"
        if perfregress.fingerprint(base) != perfregress.fingerprint(cur):
            verdict = "SIM-DIFFERS"
            failures.append(f"{name}: simulated fingerprint changed")
        elif name == TUNE_SCENARIO:
            # composite wall (serial + spawn pool + warm) with huge pool
            # variance on small hosts; gated by its own criteria below
            verdict = "ok (sweep-gated, wall exempt)"
        elif base["wall_s"] < args.min_wall_s:
            verdict = "ok (tiny, wall exempt)"
        elif ratio > 1.0 + args.tolerance:
            verdict = f"REGRESSED >{args.tolerance:.0%}"
            failures.append(f"{name}: {ratio:.2f}x baseline wall-clock")
        elif ratio < 1.0 - args.tolerance:
            verdict = "faster (refresh baseline?)"
        print(
            f"{name:<18} {base['wall_s']*1e3:9.1f}ms {cur['wall_s']*1e3:9.1f}ms "
            f"{ratio:6.2f}x  {verdict}"
        )

    obs = fresh.get(OBS_SCENARIO)
    if obs is not None and "sim_overhead_pct" in obs:
        pct = obs["sim_overhead_pct"]
        if pct > args.obs_budget_pct:
            failures.append(
                f"{OBS_SCENARIO}: instrumented simulated step time "
                f"+{pct:.2f}% exceeds the {args.obs_budget_pct:.1f}% budget"
            )
        else:
            print(
                f"\nobservability: instrumented simulated overhead {pct:+.3f}% "
                f"(budget {args.obs_budget_pct:.1f}%, "
                f"{obs.get('events_recorded', 0)} events recorded)"
            )

    tune = fresh.get(TUNE_SCENARIO)
    if tune is not None and "parallel_speedup" in tune:
        if not tune.get("sim_tables_identical", False):
            failures.append(
                f"{TUNE_SCENARIO}: parallel/warm tuning tables differ from serial"
            )
        if not tune.get("sim_samples_identical", False):
            failures.append(
                f"{TUNE_SCENARIO}: parallel/warm sample streams differ from serial"
            )
        recomputed = tune.get("warm_recomputed", 0)
        if recomputed != 0:
            failures.append(
                f"{TUNE_SCENARIO}: warm-cache run recomputed {recomputed} "
                "cell(s); expected 0"
            )
        serial_s = tune.get("serial_wall_s", 0.0)
        warm_pct = (
            tune["warm_wall_s"] / serial_s * 100.0 if serial_s > 0 else 0.0
        )
        if warm_pct > args.sweep_warm_pct:
            failures.append(
                f"{TUNE_SCENARIO}: warm-cache sweep took {warm_pct:.1f}% of "
                f"the serial wall (budget {args.sweep_warm_pct:.1f}%)"
            )
        speedup = tune["parallel_speedup"]
        host_cpus = tune.get("host_cpus", 1)
        if host_cpus >= 2 and speedup < args.sweep_floor:
            failures.append(
                f"{TUNE_SCENARIO}: parallel sweep only {speedup:.2f}x serial "
                f"on {host_cpus} CPUs (floor {args.sweep_floor:.2f}x)"
            )
        parallel_note = (
            f"{speedup:.2f}x parallel"
            if host_cpus >= 2
            else f"{speedup:.2f}x parallel (floor waived: {host_cpus} CPU host)"
        )
        print(
            f"\nsweep engine: {parallel_note}, warm cache "
            f"{tune.get('warm_speedup', 0.0):.0f}x "
            f"({warm_pct:.1f}% of serial, {recomputed} cell(s) recomputed)"
        )

    plan = fresh.get(PLAN_SCENARIO)
    if plan is not None and "plan_hit_rate" in plan:
        if not plan.get("sim_cached_equals_uncached", False):
            failures.append(
                f"{PLAN_SCENARIO}: cached and uncached dispatch produced "
                "different simulated times"
            )
        rate = plan["plan_hit_rate"]
        if rate < args.plan_hit_floor:
            failures.append(
                f"{PLAN_SCENARIO}: steady-state plan hit rate {rate:.3f} "
                f"below the {args.plan_hit_floor:.2f} floor"
            )
        else:
            print(
                f"\nplan cache: hit rate {rate:.3f} "
                f"({plan.get('plan_hits', 0)} hits / "
                f"{plan.get('plan_misses', 0)} misses, "
                "cached == uncached simulated time)"
            )

    hier = fresh.get(HIER_SCENARIO)
    if hier is not None and "hier_speedup" in hier:
        speedup = hier["hier_speedup"]
        pick = hier.get("sim_pick_large", "")
        if not str(pick).startswith("hier:"):
            failures.append(
                f"{HIER_SCENARIO}: tuned large-message pick is {pick!r}, "
                "expected a hier:* composite"
            )
        if speedup < args.hier_speedup_floor:
            failures.append(
                f"{HIER_SCENARIO}: composite only {speedup:.3f}x the best "
                f"flat backend (floor {args.hier_speedup_floor:.2f}x)"
            )
        else:
            print(
                f"\nhierarchical: composite {speedup:.2f}x best flat backend "
                f"at 4 MiB (floor {args.hier_speedup_floor:.2f}x; tuned picks "
                f"{hier.get('sim_pick_small')!r} @4KiB, {pick!r} @4MiB)"
            )

    adapt = fresh.get(ADAPT_SCENARIO)
    if adapt is not None and "adapt_recovery" in adapt:
        recovery = adapt["adapt_recovery"]
        if adapt.get("sim_retunes", 0) < 1:
            failures.append(
                f"{ADAPT_SCENARIO}: retuner never committed a new pick "
                "under the degraded link"
            )
        if recovery < args.adapt_floor:
            failures.append(
                f"{ADAPT_SCENARIO}: adaptive tail only {recovery:.3f}x the "
                f"static table (floor {args.adapt_floor:.2f}x)"
            )
        else:
            print(
                f"\nadaptive: degraded-link recovery {recovery:.2f}x over the "
                f"static table (floor {args.adapt_floor:.2f}x; final pick "
                f"{adapt.get('sim_final_pick')!r}, "
                f"{adapt.get('sim_retunes', 0)} retune(s))"
            )

    if failures:
        print("\nperfgate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperfgate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
