#!/usr/bin/env python
"""Quickstart: the MCR-DL API on a simulated 8-GPU cluster.

Runs the paper's Listing 3 (communication/computation overlap) and
Listing 4 (mixed-backend communication) almost verbatim, plus a tour of
the collective API — point-to-point, rooted, and vectored operations —
with real data movement you can check.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import mcr_dl
from repro.cluster import lassen
from repro.sim import Simulator


def main(ctx):
    # --- init: any set of backends, mixed freely afterwards ---------
    comm = mcr_dl.init(["nccl", "mvapich2-gdr"])
    rank, world = mcr_dl.get_rank(), mcr_dl.get_size()

    # --- Listing 3: overlap communication with computation ----------
    x = ctx.full(1 << 20, float(rank))
    h = mcr_dl.all_reduce("nccl", x, async_op=True)
    ctx.launch(200.0, label="y = y + y")  # independent GPU work
    h.wait("nccl")  # gates the default stream; the host does not block

    # --- Listing 4: mix backends without deadlocks ------------------
    a = ctx.full(1 << 20, 1.0)
    b = ctx.full(1 << 20, 2.0)
    h1 = mcr_dl.all_reduce("nccl", a, async_op=True)
    h2 = mcr_dl.all_reduce("mvapich2-gdr", b, async_op=True)
    ctx.launch(100.0, label="z = z + z")
    h1.wait()
    h2.wait()

    # --- data you can check ------------------------------------------
    v = ctx.full(4, float(rank + 1))
    mcr_dl.all_reduce("mvapich2-gdr", v)  # blocking MPI: host-complete
    expected = world * (world + 1) / 2
    assert np.allclose(v.data, expected)

    # rooted + vectored collectives work on every backend, including
    # NCCL (which has no native gather/vectored support — MCR-DL fills
    # the gap, Table I)
    out = ctx.zeros(world) if rank == 0 else None
    mcr_dl.gather("nccl", ctx.full(1, float(rank)), out, root=0)
    gathered = ctx.zeros(sum(range(world)) or 1)
    mcr_dl.all_gatherv(
        "nccl", gathered, ctx.full(max(rank, 1), float(rank)),
        rcounts=list(range(world)),
    )

    # point-to-point ring
    right, left = (rank + 1) % world, (rank - 1) % world
    buf = ctx.zeros(1)
    hr = mcr_dl.irecv("mvapich2-gdr", buf, src=left)
    mcr_dl.send("mvapich2-gdr", ctx.full(1, float(rank)), dst=right)
    hr.synchronize()
    assert buf.data[0] == left

    mcr_dl.barrier()
    mcr_dl.finalize()
    return ctx.now


if __name__ == "__main__":
    sim = Simulator(world_size=8, system=lassen())
    result = sim.run(main)
    print(f"ran 8 simulated ranks on Lassen in {result.elapsed_ms:.2f} simulated ms")
    print("per-rank finish times (us):", [f"{t:.1f}" for t in result.rank_results])
    print("quickstart OK")
