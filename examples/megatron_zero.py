#!/usr/bin/env python
"""Dense Megatron-DeepSpeed with process groups (paper Figure 10).

Shows MCR-DL sub-communicators in action: tensor-parallel pairs run
latency-critical activation allreduces on MVAPICH2-GDR's direct-pair
path while the data-parallel group runs ZeRO-2 reduce-scatter on MV2 and
the parameter allgather on MSCCL's synthesized schedule — the
MSCCL + MVAPICH2-GDR mixture of the paper's dense experiment.

Run:  python examples/megatron_zero.py
"""

from repro.cluster import thetagpu
from repro.models import BackendPlan, MegatronConfig, MegatronDenseModel, Trainer

SCALES = [4, 8, 16]


def main():
    system = thetagpu()
    # a lighter 12-layer config so the example runs in a few seconds
    model = MegatronDenseModel(MegatronConfig(layers=12))
    trainer = Trainer(system, steps=2, warmup=1)

    plans = [
        BackendPlan.pure("msccl", "SCCL"),
        BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR"),
        BackendPlan.mixed(
            allreduce="mvapich2-gdr",      # TP pairs: direct-copy path
            reduce_scatter="mvapich2-gdr",  # ZeRO-2 grads: pairwise exchange
            allgather="msccl",              # params: synthesized allgather
            alltoall="mvapich2-gdr",
            label="MCR-DL",
        ),
    ]

    print(f"{'GPUs':>5} " + "".join(f"{p.label:>16}" for p in plans) + "   samples/s")
    last = {}
    for ws in SCALES:
        row = []
        for plan in plans:
            result = trainer.run(model, ws, plan)
            row.append(result.samples_per_sec)
            last[plan.label] = result
        print(f"{ws:>5} " + "".join(f"{v:>16.2f}" for v in row))

    print(f"\ncomm breakdown at {SCALES[-1]} GPUs (per-rank us/step):")
    for label, r in last.items():
        parts = ", ".join(
            f"{k}={v:.0f}"
            for k, v in sorted(r.comm_by_family.items())
            if k != "barrier" and v > 0
        )
        print(f"  {label:>14}: {parts}")
    best_pure = max(last["SCCL"].samples_per_sec, last["MVAPICH2-GDR"].samples_per_sec)
    gain = last["MCR-DL"].samples_per_sec / best_pure - 1
    print(f"\nmixture vs best pure backend at {SCALES[-1]} GPUs: {gain * 100:+.1f}%")


if __name__ == "__main__":
    main()
