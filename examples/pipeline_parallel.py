#!/usr/bin/env python
"""Pipeline parallelism over MCR-DL point-to-point operations.

The paper motivates MCR-DL with the communication diversity of advanced
parallelism schemes (§I) — this example runs a 1F1B pipeline where
activations and gradients stream between stages as `isend`/`irecv`
pairs, and shows two classic pipeline phenomena:

* the warmup/drain *bubble* amortizing away as micro-batch count grows;
* hybrid pipeline + data parallelism using process groups (p2p between
  stages, Allreduce within each stage's data-parallel group).

Run:  python examples/pipeline_parallel.py
"""

from repro.cluster import lassen
from repro.models import BackendPlan, PipelineConfig, PipelineParallelModel, Trainer


def main():
    system = lassen(max_nodes=8)
    trainer = Trainer(system, steps=2, warmup=1)
    plan = BackendPlan.mixed()

    print("pipeline bubble vs micro-batch count (4 stages, 4 GPUs):")
    print(f"{'micro_batches':>14} {'samples/s':>12}")
    for mb in (2, 4, 8, 16, 32):
        model = PipelineParallelModel(PipelineConfig(layers=8, micro_batches=mb))
        result = trainer.run(model, 4, plan)
        tail = "  (bubble amortized: approaching the no-bubble limit)" if mb == 32 else ""
        print(f"{mb:>14} {result.samples_per_sec:>12.1f}{tail}")

    print("\nhybrid pipeline + data parallelism at 8 GPUs:")
    for stages in (8, 4, 2):
        model = PipelineParallelModel(PipelineConfig(layers=8, stages=stages))
        result = trainer.run(model, 8, plan)
        dp = 8 // stages
        comm = {k: round(v) for k, v in result.comm_by_family.items()
                if k != "barrier" and v > 0}
        print(f"  stages={stages} dp={dp}: {result.samples_per_sec:>7.1f} samples/s "
              f"comm(us/step)={comm}")


if __name__ == "__main__":
    main()
