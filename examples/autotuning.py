#!/usr/bin/env python
"""The tuning suite and the "auto" backend (paper §V-F, Table II).

Builds a static tuning table for Lassen, prints the Allgather slice
(the paper's Table II), and then routes a single workload's operations
through ``backend="auto"`` — showing different backends being selected
per (operation, message size) at runtime.

Run:  python examples/autotuning.py
"""

from repro import mcr_dl
from repro.backends.ops import OpFamily
from repro.cluster import lassen
from repro.core import Tuner
from repro.sim import Simulator

WORLD = 16


def build_table(system):
    tuner = Tuner(system, ["mvapich2-gdr", "nccl", "msccl"])
    report = tuner.build_table(
        world_sizes=[WORLD],
        message_sizes=[256 * (2**i) for i in range(12)],
        ops=[OpFamily.ALLGATHER, OpFamily.ALLREDUCE, OpFamily.ALLTOALL],
    )
    return report.table


def main():
    system = lassen()
    table = build_table(system)

    print(f"Table II — all_gather tuning table at world size {WORLD}:")
    print(f"  {'Message Size':>12}  Backend")
    for msg, backend in table.rows("allgather", WORLD):
        print(f"  {msg:>12}  {backend}")

    table.save("results/tuning_table_lassen.json") if __import__("pathlib").Path(
        "results"
    ).is_dir() else None

    def workload(ctx):
        comm = mcr_dl.init(["nccl", "mvapich2-gdr", "msccl"], tuning_table=table)
        # small allreduce -> tuned to MVAPICH2-GDR; large -> NCCL;
        # the user just says "auto"
        mcr_dl.all_reduce("auto", ctx.zeros(64))
        mcr_dl.all_reduce("auto", ctx.virtual_tensor(1 << 20))
        mcr_dl.all_to_all_single(
            "auto", ctx.virtual_tensor(1 << 18), ctx.virtual_tensor(1 << 18)
        )
        mcr_dl.finalize()

    sim = Simulator(WORLD, system=system, trace=True)
    result = sim.run(workload)
    chosen = sorted(
        {r.label for r in result.tracer.filter(rank=0, category="comm")}
    )
    print("\noperations issued with backend='auto' actually ran on:")
    for label in chosen:
        print(f"  {label}")
    backends_used = {label.split(":")[1] for label in chosen}
    print(f"\n{len(backends_used)} distinct backends chosen automatically: "
          f"{sorted(backends_used)}")


if __name__ == "__main__":
    main()
