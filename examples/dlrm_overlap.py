#!/usr/bin/env python
"""DLRM's non-blocking Alltoall overlap (paper §III-E, Figure 9).

DLRM shuffles embedding lookups between table shards with an Alltoall
that is overlapped with the previous batch's top-MLP compute — the
workload that *requires* non-blocking Alltoall support (which PyTorch's
distributed module only offers on NCCL, and Horovod not at all).

This example measures the same DLRM step with and without the overlap
and shows the timeline evidence from the tracer.

Run:  python examples/dlrm_overlap.py
"""

from repro.cluster import thetagpu
from repro.models import BackendPlan, CommDriver, DLRMModel
from repro.models.dlrm import DLRMConfig
from repro.sim import Simulator

WORLD = 16


def step(ctx, overlap: bool):
    """One DLRM batch; with overlap=False the Alltoall blocks instead."""
    model = DLRMModel(DLRMConfig())
    driver = CommDriver(ctx, BackendPlan.mixed(), enable_logging=False)
    costs = model._compute_costs(ctx)
    cfg = model.config
    elems = max(ctx.world_size, cfg.alltoall_bytes() // 4)
    elems -= elems % ctx.world_size
    shuffle_in = ctx.virtual_tensor(elems)
    shuffle_out = ctx.virtual_tensor(elems)

    ctx.launch(costs["lookup"], label="emb:lookup")
    handle = driver.all_to_all_single(shuffle_out, shuffle_in, async_op=True)
    if not overlap:
        handle.synchronize()  # serialize: no compute while shuffling
    ctx.launch(costs["bottom_fwd"], label="fwd:bottom")
    ctx.launch(costs["top_fwd"], label="fwd:top(prev)")
    if overlap:
        handle.wait()
    ctx.launch(costs["interact"], label="fwd:interact")
    ctx.launch(costs["top_fwd"], label="fwd:top")
    driver.step_sync()
    driver.finalize()
    return ctx.now


def run(overlap: bool):
    sim = Simulator(WORLD, system=thetagpu(), trace=True)
    result = sim.run(step, overlap)
    comm = result.tracer.filter(rank=0, category="comm")
    compute = result.tracer.filter(rank=0, category="compute")
    overlap_us = result.tracer.overlap_time(comm, compute)
    return result.elapsed_us, overlap_us


def main():
    serial_us, serial_overlap = run(overlap=False)
    overlapped_us, overlapped_overlap = run(overlap=True)
    print(f"{WORLD} simulated A100 GPUs on ThetaGPU, one DLRM batch:")
    print(f"  blocking Alltoall:     {serial_us:9.1f} us/step "
          f"(comm/compute overlap {serial_overlap:7.1f} us)")
    print(f"  non-blocking Alltoall: {overlapped_us:9.1f} us/step "
          f"(comm/compute overlap {overlapped_overlap:7.1f} us)")
    gain = serial_us / overlapped_us - 1
    print(f"  overlap speedup: {gain * 100:+.1f}%")
    assert overlapped_us < serial_us


if __name__ == "__main__":
    main()
