#!/usr/bin/env python
"""Deadlock-free mixed-backend communication (paper §V-D, Fig. 4/5).

Two ranks post collectives on two backends in *opposite orders* — the
classic mixed-runtime deadlock.  Under a naive synchronization scheme
(everything on the default stream, host-blocking) the job genuinely
hangs and the simulator reports the deadlock with per-rank diagnostics;
under MCR-DL's fine-grained CUDA-event scheme it completes, and the
trace shows cross-backend overlap.

Run:  python examples/deadlock_freedom.py
"""

from repro.core import MCRCommunicator, MCRConfig
from repro.sim import DeadlockError, Simulator


def misordered(ctx, config):
    comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"], config=config)
    x = ctx.virtual_tensor(1 << 20)
    y = ctx.virtual_tensor(1 << 20)
    if ctx.rank % 2 == 0:
        comm.all_reduce("nccl", x)
        comm.all_reduce("mvapich2-gdr", y)
    else:
        comm.all_reduce("mvapich2-gdr", y)
        comm.all_reduce("nccl", x)
    comm.finalize()
    return ctx.now


def main():
    print("posting NCCL and MPI collectives in opposite orders on 2 ranks...\n")

    print("1) naive synchronization (Fig. 4a: default stream + host blocking):")
    try:
        Simulator(2).run(misordered, MCRConfig(synchronization="naive"))
        print("   unexpectedly completed?!")
    except DeadlockError as err:
        print("   DEADLOCK, as a real naive runtime would:")
        for line in str(err).splitlines()[1:]:
            print("    ", line.strip())

    print("\n2) MCR-DL fine-grained synchronization (Fig. 4b):")
    result = Simulator(2, trace=True).run(misordered, MCRConfig())
    print(f"   completed in {result.elapsed_us:.1f} simulated us")
    tracer = result.tracer
    nccl = tracer.filter(rank=0, label_contains="nccl")
    mpi = tracer.filter(rank=0, label_contains="mvapich")
    print(f"   cross-backend overlap on rank 0: "
          f"{tracer.overlap_time(nccl, mpi):.1f} us")


if __name__ == "__main__":
    main()
