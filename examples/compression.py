#!/usr/bin/env python
"""Lossy communication compression (paper §V-E, Listing 2's use case).

The paper's Listing 2 shows a compressed-gradient Allgather shrinking
from 20 lines of cupy<->numpy staging to two MCR-DL calls.  Here the
fixed-rate codec is switched on in the communicator config: the wire
time of a large gradient allreduce drops ~rate/32-fold, and the *actual*
quantization error appears in the reduced values — the accuracy/speed
trade-off, measured.

Run:  python examples/compression.py
"""

import numpy as np

from repro.core import CompressionConfig, MCRCommunicator, MCRConfig
from repro.sim import Simulator

WORLD = 8
GRAD_ELEMS = 1 << 22  # 16 MiB of fp32 gradients


def run(rate_bits):
    def main(ctx):
        config = MCRConfig()
        if rate_bits is not None:
            config.compression = CompressionConfig(enabled=True, rate_bits=rate_bits)
        comm = MCRCommunicator(ctx, ["nccl"], config=config)
        # timing half: full-size virtual gradients
        t0 = ctx.now
        h = comm.all_reduce("nccl", ctx.virtual_tensor(GRAD_ELEMS), async_op=True)
        h.synchronize()
        elapsed = ctx.now - t0
        # accuracy half: real (small) gradients through the same codec path
        real = ctx.tensor(np.sin(np.arange(4096) * 0.01 + ctx.rank).astype(np.float32))
        reference = real.data.copy()
        comm.all_reduce("nccl", real)
        comm.synchronize()
        comm.finalize()
        exact = sum(
            np.sin(np.arange(4096) * 0.01 + r).astype(np.float32) for r in range(WORLD)
        )
        err = float(np.abs(real.data - exact).max() / np.abs(exact).max())
        return elapsed, err

    results = Simulator(WORLD).run(main).rank_results
    return max(e for e, _ in results), max(err for _, err in results)


def main():
    print(f"16 MiB gradient allreduce on {WORLD} simulated V100 GPUs:\n")
    print(f"{'rate':>8} {'wire time (us)':>15} {'speedup':>8} {'max rel error':>14}")
    base_time, _ = run(None)
    for label, bits in [("off", None), ("12-bit", 12), ("8-bit", 8), ("4-bit", 4)]:
        elapsed, err = run(bits)
        print(f"{label:>8} {elapsed:>15.1f} {base_time / elapsed:>7.2f}x {err:>14.5f}")
    print("\nhigher compression = faster wire, larger (bounded) error — the")
    print("codec path is exercised end to end, including the real data loss.")


if __name__ == "__main__":
    main()
