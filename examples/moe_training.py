#!/usr/bin/env python
"""DS-MoE training with mix-and-match backends (paper Figure 8, scaled
down to run in seconds).

Trains the paper's 350M+PR-MoE DeepSpeed-MoE step model at 16/32/64
simulated V100 GPUs under four communication strategies and prints
throughput plus the per-op communication breakdown — showing the
Allreduce-bound -> Alltoall-bound transition and why mixing wins.

Run:  python examples/moe_training.py
"""

from repro.backends.ops import OpFamily
from repro.cluster import lassen
from repro.core import Tuner
from repro.models import BackendPlan, DSMoEModel, Trainer

SCALES = [16, 32, 64]


def main():
    system = lassen()
    model = DSMoEModel()
    trainer = Trainer(system, steps=2, warmup=1)

    # the tuning suite generates a static table once per system (§V-F)
    print("building tuning table (analytic tuning suite)...")
    table = Tuner(system, ["nccl", "mvapich2-gdr", "msccl"]).build_table(
        world_sizes=SCALES,
        ops=[OpFamily.ALLREDUCE, OpFamily.ALLTOALL, OpFamily.ALLGATHER],
    ).table

    plans = [
        BackendPlan.pure("nccl", "NCCL"),
        BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR"),
        BackendPlan.mixed(label="MCR-DL"),
        BackendPlan.tuned(table, label="MCR-DL-T"),
    ]

    print(f"\n{'GPUs':>5} " + "".join(f"{p.label:>16}" for p in plans) + "   (samples/s)")
    best = {}
    for ws in SCALES:
        row = []
        for plan in plans:
            result = trainer.run(model, ws, plan)
            row.append(result.samples_per_sec)
            best[(ws, plan.label)] = result
        print(f"{ws:>5} " + "".join(f"{v:>16.1f}" for v in row))

    print("\ncommunication breakdown at 64 GPUs (per-rank us/step):")
    for label in ("NCCL", "MVAPICH2-GDR", "MCR-DL"):
        r = best[(64, label)]
        parts = ", ".join(
            f"{k}={v:.0f}" for k, v in sorted(r.comm_by_family.items()) if k != "barrier"
        )
        print(f"  {label:>14}: {parts}")

    mcr = best[(64, "MCR-DL")].samples_per_sec
    for label in ("NCCL", "MVAPICH2-GDR"):
        gain = mcr / best[(64, label)].samples_per_sec - 1
        print(f"MCR-DL vs {label} at 64 GPUs: {gain * 100:+.1f}%")


if __name__ == "__main__":
    main()
