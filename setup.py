"""Legacy setup shim.

Offline environments without the `wheel` package cannot perform PEP 660
editable installs; this shim lets `pip install -e .` fall back to the
classic `setup.py develop` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
